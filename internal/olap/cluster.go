package olap

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/objstore"
	"repro/internal/obs"
	"repro/internal/olap/qcache"
	"repro/internal/record"
)

// Errors returned by the serving layer.
var (
	// ErrServerDown is returned when a subquery lands on a failed server.
	ErrServerDown = errors.New("olap: server down")
	// ErrSegmentUnavailable is returned when no live replica holds a
	// segment and recovery from the segment store failed too.
	ErrSegmentUnavailable = errors.New("olap: segment unavailable")
	// ErrSegmentsBusy is returned when a maintenance operation (compaction,
	// rebalance move) finds its segments already claimed by another
	// in-flight operation. Retryable: the claim is released when that
	// operation finishes.
	ErrSegmentsBusy = errors.New("olap: segments busy")
	// errPlanStale marks a rebalance move whose placement changed between
	// planning and the swap (compaction replaced the segment, another move
	// won the slot, the target left the active set). Retryable by
	// re-planning.
	errPlanStale = errors.New("olap: rebalance plan stale")
)

// location tracks an upsert key's latest record.
type location struct {
	segment string // "" means the consuming (mutable) segment
	doc     int
}

// hosted tracks one sealed segment's local serving state: the resident
// columnar data (nil while offloaded to the deep store), metadata kept
// resident even while the data is not (so time pruning and upsert
// invalidation never need a deep-store fetch), and the last query touch
// that drives the lifecycle manager's LRU hot-set.
type hosted struct {
	seg       *Segment // nil while offloaded
	numRows   int
	minTime   int64
	maxTime   int64
	hasBounds bool
	// lastQuery is unix-nanos of the latest query touch, atomic so the
	// query path can record it under the server's read lock without
	// serializing concurrent snapshot phases.
	lastQuery atomic.Int64
	retiredAt time.Time // non-zero once dropped from routing (compaction/retention)
}

// Server hosts segments for one table deployment. All methods are safe for
// concurrent use.
type Server struct {
	name string

	mu       sync.RWMutex
	segments map[string]*hosted
	valid    map[string]*Bitmap // upsert: segment -> still-valid docs
	down     bool
	loader   func(name string) (*Segment, error)
	reloads  int64

	// scanDelay is a fault-injection hook: a per-segment-scan sleep applied
	// inside the timed scan window, so the slow-query log attributes the
	// induced latency to this server's segment.scan spans (E22).
	scanDelay atomic.Int64

	// scanHist/reloadHist are bound by the owning deployment's registry
	// (labels server=name); nil-safe when the server is used standalone.
	scanHist   *obs.Histogram
	reloadHist *obs.Histogram
}

// NewServer creates an empty server.
func NewServer(name string) *Server {
	return &Server{
		name:     name,
		segments: make(map[string]*hosted),
		valid:    make(map[string]*Bitmap),
	}
}

// Name returns the server name.
func (s *Server) Name() string { return s.name }

// SetScanDelay injects a per-segment-scan delay (0 clears it). The sleep
// happens inside the timed scan window, so tracing attributes it to this
// server's segment.scan spans — the fault E22 isolates via the slow-query
// log.
func (s *Server) SetScanDelay(d time.Duration) { s.scanDelay.Store(int64(d)) }

// bindMetrics attaches this server's latency histograms to a registry.
// Called by NewDeployment before traffic; replaces any previous binding.
func (s *Server) bindMetrics(reg *obs.Registry) {
	s.mu.Lock()
	s.scanHist = reg.Histogram("olap_segment_scan_ns", obs.Label{Key: "server", Value: s.name})
	s.reloadHist = reg.Histogram("olap_segment_reload_ns", obs.Label{Key: "server", Value: s.name})
	s.mu.Unlock()
}

// SetDown injects or clears a server failure.
func (s *Server) SetDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// Down reports the injected failure state.
func (s *Server) Down() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.down
}

// AddSegment installs a sealed segment (with its upsert validity bitmap,
// which may be nil for non-upsert tables).
func (s *Server) AddSegment(seg *Segment, valid *Bitmap) {
	h := &hosted{
		seg:       seg,
		numRows:   seg.NumRows,
		minTime:   seg.MinTime,
		maxTime:   seg.MaxTime,
		hasBounds: seg.Schema.TimeField != "",
	}
	h.lastQuery.Store(time.Now().UnixNano())
	s.mu.Lock()
	s.segments[seg.Name] = h
	if valid != nil {
		s.valid[seg.Name] = valid
	} else {
		// A fresh install must not inherit the bitmap of a retired copy
		// this server held earlier (a segment rebalanced away and back).
		delete(s.valid, seg.Name)
	}
	s.mu.Unlock()
}

// AddOffloaded installs a sealed segment in its offloaded state: routing
// metadata only, no resident data — the metadata-only half of a rebalance
// move, where the deep store already holds the bytes and queries reload
// them transparently through the loader.
func (s *Server) AddOffloaded(name string, numRows int, minTime, maxTime int64, hasBounds bool, valid *Bitmap) {
	h := &hosted{
		numRows:   numRows,
		minTime:   minTime,
		maxTime:   maxTime,
		hasBounds: hasBounds,
	}
	h.lastQuery.Store(time.Now().UnixNano())
	s.mu.Lock()
	s.segments[name] = h
	if valid != nil {
		s.valid[name] = valid
	} else {
		delete(s.valid, name)
	}
	s.mu.Unlock()
}

// HasSegment reports whether the server hosts the named segment (resident
// or offloaded; retired segments no longer count).
func (s *Server) HasSegment(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.segments[name]
	return ok && h.retiredAt.IsZero()
}

// Hosts reports whether the server can still serve the named segment,
// including retired copies kept resident for in-flight queries. Routing
// uses this (not HasSegment) so a query whose snapshot predates a
// rebalance or compaction swap can land on the old replica during the
// retire grace window instead of failing — the segment data is immutable,
// so the retired copy answers exactly.
func (s *Server) Hosts(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.segments[name]
	return ok
}

// Segment returns a hosted segment's resident data (nil when absent,
// offloaded or server down).
func (s *Server) Segment(name string) *Segment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.down {
		return nil
	}
	if h, ok := s.segments[name]; ok {
		return h.seg
	}
	return nil
}

// SetLoader attaches the deep-store fetch used to transparently reload
// offloaded segments during queries. The lifecycle manager installs it; a
// server without a loader fails queries over offloaded segments.
func (s *Server) SetLoader(fn func(name string) (*Segment, error)) {
	s.mu.Lock()
	s.loader = fn
	s.mu.Unlock()
}

// Offload drops a segment's resident data, keeping routing metadata (time
// bounds, row count) so pruning and upsert invalidation keep working. The
// caller must have archived the segment first. Reports whether data was
// actually released.
func (s *Server) Offload(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.segments[name]
	if !ok || !h.retiredAt.IsZero() || h.seg == nil {
		return false
	}
	h.seg = nil
	return true
}

// Retire unroutes a segment (compaction replaced it, or retention expired
// it) while keeping its data briefly resident so queries that routed
// before the swap still finish. PurgeRetired reclaims the memory.
func (s *Server) Retire(name string) {
	s.mu.Lock()
	if h, ok := s.segments[name]; ok && h.retiredAt.IsZero() {
		h.retiredAt = time.Now()
	}
	s.mu.Unlock()
}

// PurgeRetired drops retired segments (and their validity bitmaps) that
// were retired before the cutoff, returning how many were reclaimed.
func (s *Server) PurgeRetired(before time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for name, h := range s.segments {
		if !h.retiredAt.IsZero() && h.retiredAt.Before(before) {
			delete(s.segments, name)
			delete(s.valid, name)
			n++
		}
	}
	return n
}

// Resident reports whether the named segment's data is in memory here.
func (s *Server) Resident(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.segments[name]
	return ok && h.seg != nil
}

// LastQuery returns the most recent query touch of a hosted segment (zero
// when absent) — the lifecycle manager's LRU signal.
func (s *Server) LastQuery(name string) time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if h, ok := s.segments[name]; ok {
		return time.Unix(0, h.lastQuery.Load())
	}
	return time.Time{}
}

// Reloads returns how many deep-store reloads this server has performed.
func (s *Server) Reloads() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reloads
}

// invalidate clears an upsert-superseded doc in a sealed segment. The
// metadata kept by hosted lets this work even while the segment's data is
// offloaded.
func (s *Server) invalidate(segment string, doc int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bm, ok := s.valid[segment]
	if !ok {
		if h, has := s.segments[segment]; has {
			bm = NewBitmap(h.numRows)
			bm.Fill()
			s.valid[segment] = bm
		} else {
			return
		}
	}
	bm.Clear(doc)
}

// ExecOptions tunes one server-side subquery execution.
type ExecOptions struct {
	// Workers bounds the segment-scan worker pool (0 means GOMAXPROCS; 1
	// forces the serial baseline).
	Workers int
	// HotOnly skips offloaded segments instead of reloading them from the
	// deep store — the ConsistencyHot execution mode, reported via
	// ExecStats.SegmentsSkipped.
	HotOnly bool
	// TrimExact disables bounded top-K trimming for ORDER BY/LIMIT queries:
	// every matching row and every candidate group crosses the wire, so
	// results are byte-identical to a full sort. The default (false) trims
	// like Pinot — fast, and for grouped aggregations potentially inexact
	// under pathological cross-server skew.
	TrimExact bool
	// TrimSize overrides the minimum group budget of trimmed grouped top-K
	// aggregations (0 = DefaultGroupTrimSize); the kept count is
	// max(5·(Limit+Offset), TrimSize).
	TrimSize int
}

// segSnapshot is one query's view of the routed segments on this server:
// resident segment data plus cloned validity bitmaps (index-aligned), with
// out-of-window segments pruned and offloaded segments transparently
// reloaded or skipped. Shared by the partial path (ExecuteOn) and the
// streaming path (StreamOn).
type segSnapshot struct {
	segs     []*Segment
	valids   []*Bitmap
	pruned   int
	skipped  int
	reloaded int
	scanHist *obs.Histogram
}

// snapshotSegments runs the ExecuteOn/StreamOn preamble: under the read
// lock it checks liveness, prunes segments whose time bounds miss the
// query's window (using hosted metadata, so offloaded segments never touch
// the deep store), records query touches for the LRU hot-set, and clones
// validity bitmaps; then — outside the lock, because the deep store may be
// slow or down — it reloads surviving offloaded segments through the
// attached loader and installs them back as resident (or skips them when
// hotOnly). A reload failure fails only queries that need the cold
// segment; hot-set queries are unaffected — the graceful-degradation
// contract under a deep-store outage.
func (s *Server) snapshotSegments(ctx context.Context, q *Query, segmentNames []string, hotOnly bool) (*segSnapshot, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	now := time.Now().UnixNano()
	s.mu.RLock()
	if s.down {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrServerDown, s.name)
	}
	snap := &segSnapshot{
		segs:   make([]*Segment, 0, len(segmentNames)),
		valids: make([]*Bitmap, 0, len(segmentNames)),
	}
	var offloaded []string
	for _, name := range segmentNames {
		h, ok := s.segments[name]
		if !ok {
			s.mu.RUnlock()
			return nil, fmt.Errorf("%w: %s on %s", ErrSegmentUnavailable, name, s.name)
		}
		// Time pruning: the bounds live in the hosted metadata, so an
		// out-of-window offloaded segment is skipped without touching the
		// deep store — pruning composes with tiering.
		if q.Time != nil && h.hasBounds && !q.Time.Overlaps(h.minTime, h.maxTime) {
			snap.pruned++
			continue
		}
		h.lastQuery.Store(now) // atomic: concurrent snapshots share the read lock
		if h.seg == nil {
			if hotOnly {
				snap.skipped++
				continue
			}
			offloaded = append(offloaded, name)
			continue
		}
		snap.segs = append(snap.segs, h.seg)
		// Snapshot the validity bitmap: Server.invalidate mutates it under
		// s.mu while scans here run lock-free (and concurrently).
		snap.valids = append(snap.valids, cloneValid(s.valid[name])) // nil when fully valid
	}
	loader := s.loader
	snap.scanHist = s.scanHist
	reloadHist := s.reloadHist
	s.mu.RUnlock()

	for _, name := range offloaded {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if loader == nil {
			return nil, fmt.Errorf("%w: %s offloaded on %s with no loader", ErrSegmentUnavailable, name, s.name)
		}
		reloadStart := time.Now()
		seg, err := loader(name)
		if err != nil {
			return nil, fmt.Errorf("%w: reloading %s on %s: %v", ErrSegmentUnavailable, name, s.name, err)
		}
		reloadHist.Observe(time.Since(reloadStart))
		s.mu.Lock()
		if h, ok := s.segments[name]; ok && h.seg == nil {
			h.seg = seg
			s.reloads++
		}
		v := cloneValid(s.valid[name])
		s.mu.Unlock()
		snap.reloaded++
		snap.segs = append(snap.segs, seg)
		snap.valids = append(snap.valids, v)
	}
	return snap, nil
}

// ExecuteOn runs a query over the named sealed segments hosted here,
// scanning up to opts.Workers segments concurrently (0 means GOMAXPROCS)
// and merging their partial-aggregate states as they complete. Segments
// whose time bounds fall outside the query's TimeRange are pruned before
// any scan is scheduled (and before any deep-store reload); offloaded
// segments that survive pruning are transparently reloaded through the
// attached loader and installed back as resident (or skipped under
// opts.HotOnly). The context cancels in-flight work between segment scans;
// ORDER-BY-agnostic LIMIT selections stop as soon as enough rows have been
// gathered. ORDER BY + LIMIT queries execute through the bounded top-K path
// (segment heaps / group trims plus a server-level trim of the merged
// partial) unless opts.TrimExact asks for full-sort execution.
func (s *Server) ExecuteOn(ctx context.Context, q *Query, segmentNames []string, opts ExecOptions) (*Partial, error) {
	snap, err := s.snapshotSegments(ctx, q, segmentNames, opts.HotOnly)
	if err != nil {
		return nil, err
	}
	segs, valids := snap.segs, snap.valids
	scanHist := snap.scanHist
	parentSpan := obs.SpanFromContext(ctx)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	limit := earlyLimit(q)
	var tp *topKPlan
	if !opts.TrimExact {
		tp = planTopK(q, opts.TrimSize)
	}
	acc := newPartial(q)
	acc.stats.SegmentsPruned = snap.pruned
	acc.stats.SegmentsReloaded = snap.reloaded
	acc.stats.SegmentsSkipped = snap.skipped
	// scanSegment runs one segment scan with the fault-injection delay,
	// latency histogram and (when the query carries a trace) a segment.scan
	// span — the delay sleeps inside the timed window so slow-query capture
	// attributes it to this scan.
	scanSegment := func(seg *Segment, valid *Bitmap) (*Partial, error) {
		sp := parentSpan.Child("segment.scan")
		start := time.Now()
		if delay := s.scanDelay.Load(); delay > 0 {
			time.Sleep(time.Duration(delay))
		}
		p, err := seg.executePartialTrim(q, valid, tp)
		scanHist.Observe(time.Since(start))
		if sp.Active() {
			sp.SetAttr("segment", seg.Name)
			if err != nil {
				sp.SetAttr("error", err.Error())
			} else {
				sp.SetRows(p.stats.RowsScanned)
				if p.stats.StarTreeServed > 0 {
					sp.SetAttr("path", "startree")
				}
			}
			sp.End()
		}
		return p, err
	}
	// finish applies the server-level trim to the merged partial — the same
	// bound the segments used, so at most groupK groups / rowK rows cross
	// the server→broker boundary — and records what actually shipped.
	finish := func() *Partial {
		acc.trimTopK(q, tp)
		if acc.agg {
			acc.stats.GroupsShipped = int64(len(acc.groups))
		} else {
			acc.stats.RowsShipped = int64(len(acc.rows))
		}
		return acc
	}

	if workers <= 1 {
		// Serial fast path: no goroutine or channel overhead — the
		// workers=1 baseline BenchmarkParallelScatterGather compares against.
		for i, seg := range segs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p, err := scanSegment(seg, valids[i])
			if err != nil {
				return nil, err
			}
			acc.Merge(p)
			if limit > 0 && acc.Rows() >= limit {
				break
			}
		}
		return finish(), nil
	}

	// Bounded worker pool: workers pull segment indexes from a shared
	// counter and ship partials back; the merge happens here, streaming, as
	// partials arrive. Channels are buffered to capacity so workers never
	// block after cancellation.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan *Partial, len(segs))
	errs := make(chan error, workers)
	var next atomic.Int64
	next.Store(-1)
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1))
				if i >= len(segs) || ctx.Err() != nil {
					return
				}
				p, err := scanSegment(segs[i], valids[i])
				if err != nil {
					errs <- err
					return
				}
				results <- p
			}
		}()
	}
	for served := 0; served < len(segs); served++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case err := <-errs:
			return nil, err
		case p := <-results:
			acc.Merge(p)
			if limit > 0 && acc.Rows() >= limit {
				return finish(), nil // defer cancel() stops the remaining workers
			}
		}
	}
	return finish(), nil
}

// StreamOn scans the named sealed segments hosted here as a stream of
// column-major row batches, yielding each batch to the caller as it is
// produced — the scatter half of streaming execution. The same preamble as
// ExecuteOn applies (liveness, time pruning, transparent reload of
// offloaded segments); segments then scan serially through the vectorized
// gather kernel, one segment.stream span each with per-batch row counts.
// Yielded batches are pool-recycled: they are valid only until yield
// returns. yield returning false stops the scan early (consumer satisfied
// or cancelled); the returned stats then cover only the work actually
// done. Selection queries only — aggregations ship mergeable partials via
// ExecuteOn.
func (s *Server) StreamOn(ctx context.Context, q *Query, segmentNames []string, opts ExecOptions, pool *batchPool, yield func(*RowBatch) bool) (ExecStats, error) {
	snap, err := s.snapshotSegments(ctx, q, segmentNames, opts.HotOnly)
	if err != nil {
		return ExecStats{}, err
	}
	stats := ExecStats{
		SegmentsPruned:   snap.pruned,
		SegmentsReloaded: snap.reloaded,
		SegmentsSkipped:  snap.skipped,
	}
	parentSpan := obs.SpanFromContext(ctx)
	for i, seg := range snap.segs {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		// One span per segment, not per batch: the batch loop stays
		// allocation-free on the tracing side; AddRows accumulates the
		// per-batch counts onto the segment span.
		sp := parentSpan.Child("segment.stream")
		start := time.Now()
		if delay := s.scanDelay.Load(); delay > 0 {
			time.Sleep(time.Duration(delay))
		}
		segStats, more, err := seg.streamSelect(ctx, q, snap.valids[i], pool, func(rb *RowBatch) bool {
			sp.AddRows(int64(rb.Len))
			return yield(rb)
		})
		snap.scanHist.Observe(time.Since(start))
		if sp.Active() {
			sp.SetAttr("segment", seg.Name)
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}
		stats.Add(segStats)
		if err != nil {
			return stats, err
		}
		if !more {
			break
		}
	}
	return stats, nil
}

// MemBytes approximates the server's resident segment memory. Offloaded
// segments contribute nothing — the bound the lifecycle manager enforces.
func (s *Server) MemBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, h := range s.segments {
		if h.seg != nil {
			n += h.seg.MemBytes()
		}
	}
	for _, bm := range s.valid {
		n += bm.MemBytes()
	}
	return n
}

// BackupMode selects how sealed segments reach the segment store (§4.3.4).
type BackupMode int

const (
	// BackupCentralized is the original Pinot design: completed segments
	// are synchronously backed up through one controller before ingestion
	// proceeds, and replicas download from the store. A store outage halts
	// ingestion — the scalability bottleneck the paper describes.
	BackupCentralized BackupMode = iota
	// BackupP2P is Uber's scheme: sealed segments replicate directly to
	// peer servers (which can serve them on failure) while the deep-store
	// upload happens asynchronously, best-effort.
	BackupP2P
)

// String names the mode.
func (m BackupMode) String() string {
	if m == BackupP2P {
		return "p2p"
	}
	return "centralized"
}

// DeploymentConfig wires a table onto servers and a segment store.
type DeploymentConfig struct {
	Table TableConfig
	// Servers host segments; partition p's consuming segment lives on
	// servers[p % len].
	Servers []*Server
	// SegmentStore is the deep store (HDFS stand-in).
	SegmentStore objstore.Store
	// Backup selects the §4.3.4 scheme.
	Backup BackupMode
}

// Deployment is one table running on a set of servers: it ingests from the
// stream layer, seals and replicates segments, maintains upsert metadata and
// answers broker queries.
type Deployment struct {
	cfg    TableConfig
	store  objstore.Store
	backup BackupMode

	// servers is the membership list. It is append-only — indexes are the
	// stable identity placement and partition ownership are keyed by, so a
	// removed server is marked decommissioned, never deleted. The atomic
	// pointer lets the query hot path (routing closures, scatter) read the
	// list lock-free while AddServer publishes a new one under mu.
	servers atomic.Pointer[[]*Server]

	mu sync.Mutex
	// decommissioned marks servers leaving the cluster: they accept no new
	// placements (and own no partitions) but keep serving their remaining
	// segments until the rebalancer drains them — membership change without
	// a query-visible gap.
	decommissioned map[int]bool
	// busy claims segments under an in-flight multi-step operation
	// (compaction's gather→swap, a rebalance move's copy→swap) so two such
	// operations never interleave on one segment. Claims are all-or-nothing
	// per operation and released when it finishes.
	busy map[string]bool
	// consuming per partition.
	consuming map[int]*mutableSegment
	// sealing holds batches of rows that left the consuming segment but
	// whose sealed segment has not entered routing yet. Queries keep
	// serving them (routeView folds them into the consuming scan), so a
	// Seal in progress never makes rows transiently invisible; the swap to
	// the sealed segment is atomic under mu.
	sealing map[int][]*sealingBatch
	segSeq  map[int]int
	// upsert metadata per partition: pk -> latest location.
	upsertLoc map[int]map[string]location
	// segment placement: name -> replica server indexes.
	placement map[string][]int
	// segMeta: sealed-segment metadata the lifecycle layer steers by
	// (retention, pruning ratios, compaction candidates) without needing
	// the segments resident anywhere.
	segMeta map[string]*segMeta
	// compactSeq numbers compacted segments per partition so merged names
	// never collide with consuming-segment names.
	compactSeq map[int]int
	// partitionOwner: partition -> primary server index.
	partitionOwner map[int]int
	// controller serializes centralized backups (the single-controller
	// bottleneck).
	controller sync.Mutex

	ingested     int64
	sealed       int64
	uploadErrors int64
	// lastIngestNanos is the wall time of the latest ingested row, for
	// freshness measurement.
	lastIngestNanos int64

	// gen is the table's mutation fingerprint: bumped by every ingest,
	// seal, compaction, offload, drop and recovery (reads stay lock-free on
	// the query hot path). Visible-data mutations bump it INSIDE their mu
	// critical section, in the same section that changes row visibility —
	// so the value read by routeView under mu totally orders the snapshot
	// against every ViewMutation seq (see AddMutationHook). Broker
	// result-cache entries record it and invalidate on any mismatch; see
	// brokercache.go.
	gen atomic.Int64

	// hooks observe visible-data mutations (appends, upsert supersedes,
	// segment drops) synchronously inside the critical section that applied
	// them — the matview registry's maintenance feed. Registered before
	// traffic; see AddMutationHook.
	hooks []func(ViewMutation)

	asyncWG sync.WaitGroup

	// metrics is the deployment's registry; every layer (broker, lifecycle,
	// ingester, matviews) binds its handles and gauge funcs here, and
	// MetricsSnapshot is what bench/CI tooling reads. Handles below are
	// bound once in NewDeployment and used lock-free on the hot paths.
	metrics    *obs.Registry
	ingestRows *obs.Counter
	sealHist   *obs.Histogram

	// loadersOn records that AttachLoaders ran, so servers joining later
	// (AddServer) get the same transparent deep-store reload wiring.
	loadersOn atomic.Bool

	// Rebalance instrumentation (see elastic.go): slots moved, data volume
	// copied, and zero-copy metadata moves of offloaded segments.
	rebalanceMoves *obs.Counter
	rebalanceBytes *obs.Counter
	rebalanceMeta  *obs.Counter
}

// serverList reads the current membership lock-free. The slice is
// append-only and never mutated in place; indexes are stable server ids.
func (d *Deployment) serverList() []*Server { return *d.servers.Load() }

// serverAt returns the server with the given stable index.
func (d *Deployment) serverAt(i int) *Server { return (*d.servers.Load())[i] }

// NumServers returns the membership size, including decommissioned servers
// (indexes stay allocated; see Decommissioned).
func (d *Deployment) NumServers() int { return len(*d.servers.Load()) }

// Decommissioned reports whether a server has been removed from the active
// set (it accepts no new placements; the rebalancer drains its segments).
func (d *Deployment) Decommissioned(i int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.decommissioned[i]
}

// activeCountLocked counts servers accepting placements. Caller holds d.mu.
func (d *Deployment) activeCountLocked() int {
	n := 0
	for i := range d.serverList() {
		if !d.decommissioned[i] {
			n++
		}
	}
	return n
}

// pickOwnerLocked picks a partition's primary server: partition mod servers,
// advanced past decommissioned indexes. Caller holds d.mu.
func (d *Deployment) pickOwnerLocked(partition int) int {
	n := len(d.serverList())
	for i := 0; i < n; i++ {
		si := (partition + i) % n
		if !d.decommissioned[si] {
			return si
		}
	}
	return partition % n
}

// replicasForLocked picks replica indexes for a new segment: the partition
// owner first, then the following active servers in index order. Caller
// holds d.mu.
func (d *Deployment) replicasForLocked(owner int) []int {
	n := len(d.serverList())
	out := make([]int, 0, d.cfg.Replicas)
	for i := 0; i < n && len(out) < d.cfg.Replicas; i++ {
		si := (owner + i) % n
		if d.decommissioned[si] {
			continue
		}
		out = append(out, si)
	}
	if len(out) == 0 {
		out = append(out, owner)
	}
	return out
}

// activeSubstituteLocked finds an active server not already in replicas, to
// stand in for a replica decommissioned while a seal or compaction was in
// flight. Returns -1 when every active server already holds one. Caller
// holds d.mu.
func (d *Deployment) activeSubstituteLocked(replicas []int, from int) int {
	n := len(d.serverList())
	for i := 0; i < n; i++ {
		si := (from + i) % n
		if d.decommissioned[si] {
			continue
		}
		taken := false
		for _, r := range replicas {
			if r == si {
				taken = true
				break
			}
		}
		if !taken {
			return si
		}
	}
	return -1
}

// ViewMutation describes one visible-data mutation, delivered to mutation
// hooks inside the deployment critical section that applied it. Seq is the
// generation value assigned to the mutation, so hooks observe mutations in
// the exact order queries observe their effects: a routing snapshot taken
// at generation G contains precisely the mutations with Seq <= G.
type ViewMutation struct {
	Seq       int64
	Partition int
	// Row is the appended record (conformed to the table schema; shared,
	// read-only). Nil for coarse retractions such as segment drops.
	Row record.Record
	// Retract marks a non-monotonic mutation: visible rows were removed or
	// replaced (an upsert supersede, a retention drop). Mergeable
	// partial-aggregate states cannot subtract, so incremental view
	// maintenance must fall back to re-materialization past one of these.
	Retract bool
}

// AddMutationHook registers fn to observe every visible-data mutation.
// fn runs inside the deployment's mu critical section: it must be fast
// and must not call back into the Deployment or a Broker (routeView takes
// the same lock). Neutral mutations — seals, compactions, offloads,
// recoveries — still bump the generation but deliver no event: they never
// change which rows a query sees.
func (d *Deployment) AddMutationHook(fn func(ViewMutation)) {
	d.mu.Lock()
	d.hooks = append(d.hooks, fn)
	d.mu.Unlock()
}

// emitMutationLocked bumps the generation and notifies hooks of one
// visible-data mutation. Caller holds d.mu — the bump and the hook delivery
// must share the critical section that changed row visibility, or the
// seq-vs-snapshot ordering contract above breaks.
func (d *Deployment) emitMutationLocked(partition int, row record.Record, retract bool) {
	seq := d.gen.Add(1)
	for _, fn := range d.hooks {
		fn(ViewMutation{Seq: seq, Partition: partition, Row: row, Retract: retract})
	}
}

// sealingBatch is one consuming segment mid-seal: its rows stay queryable
// (served like consuming rows) and its invalid set keeps absorbing upsert
// supersedes under the deployment lock until the sealed segment atomically
// replaces the batch in routing. name is the future sealed-segment name, so
// upsert locations can already point at it.
type sealingBatch struct {
	name    string
	rows    []record.Record
	invalid map[int]bool
}

// sealingBatchLocked finds a partition's in-flight sealing batch by its
// future segment name. Caller holds d.mu.
func (d *Deployment) sealingBatchLocked(partition int, name string) *sealingBatch {
	for _, b := range d.sealing[partition] {
		if b.name == name {
			return b
		}
	}
	return nil
}

// NewDeployment validates the config and prepares a deployment.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	tcfg, err := cfg.Table.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("olap: deployment needs servers")
	}
	if tcfg.Replicas > len(cfg.Servers) {
		return nil, fmt.Errorf("olap: %d replicas > %d servers", tcfg.Replicas, len(cfg.Servers))
	}
	d := &Deployment{
		cfg:            tcfg,
		store:          cfg.SegmentStore,
		backup:         cfg.Backup,
		decommissioned: make(map[int]bool),
		busy:           make(map[string]bool),
		consuming:      make(map[int]*mutableSegment),
		sealing:        make(map[int][]*sealingBatch),
		segSeq:         make(map[int]int),
		upsertLoc:      make(map[int]map[string]location),
		placement:      make(map[string][]int),
		segMeta:        make(map[string]*segMeta),
		compactSeq:     make(map[int]int),
		partitionOwner: make(map[int]int),
		metrics:        obs.NewRegistry(),
	}
	servers := append([]*Server(nil), cfg.Servers...)
	d.servers.Store(&servers)
	d.ingestRows = d.metrics.Counter("olap_ingest_rows_total")
	d.sealHist = d.metrics.Histogram("olap_seal_ns")
	d.rebalanceMoves = d.metrics.Counter("rebalance_segments_moved_total")
	d.rebalanceBytes = d.metrics.Counter("rebalance_bytes_copied_total")
	d.rebalanceMeta = d.metrics.Counter("rebalance_metadata_moves_total")
	for _, s := range cfg.Servers {
		s.bindMetrics(d.metrics)
	}
	d.metrics.SetGaugeFunc("olap_table_generation", func() float64 {
		return float64(d.gen.Load())
	})
	d.metrics.SetGaugeFunc("olap_upload_errors_total", func() float64 {
		_, _, uploadErrors := d.Stats()
		return float64(uploadErrors)
	})
	d.metrics.SetGaugeFunc("olap_sealed_segments_total", func() float64 {
		_, sealed, _ := d.Stats()
		return float64(sealed)
	})
	return d, nil
}

// Metrics returns the deployment's metrics registry, the binding point for
// every layer's counters, gauges and histograms.
func (d *Deployment) Metrics() *obs.Registry { return d.metrics }

// MetricsSnapshot reads every registered metric — the payload bench/CI
// tooling and the SLO harness consume.
func (d *Deployment) MetricsSnapshot() []obs.MetricPoint { return d.metrics.Snapshot() }

// Table returns the deployment's table config.
func (d *Deployment) Table() TableConfig { return d.cfg }

// Ingest adds one record from the given input partition. For upsert tables
// the record's primary key supersedes any prior record with the same key —
// the shared-nothing scheme of §4.3.1: all records of one key arrive on one
// partition, whose metadata lives on exactly one server.
func (d *Deployment) Ingest(partition int, r record.Record) error {
	conformed, err := record.Conform(r, d.cfg.Schema)
	if err != nil {
		return err
	}
	if d.cfg.PartitionColumn != "" {
		// The partition-aware router prunes servers assuming records landed
		// on PartitionFor(partition column); enforce that contract here so
		// pruning can never silently miss rows.
		if want := PartitionFor(conformed[d.cfg.PartitionColumn], d.cfg.Partitions); want != partition {
			return fmt.Errorf("olap: record with %s=%v belongs on partition %d, ingested on %d",
				d.cfg.PartitionColumn, conformed[d.cfg.PartitionColumn], want, partition)
		}
	}
	d.mu.Lock()
	owner, ok := d.partitionOwner[partition]
	if !ok {
		owner = d.pickOwnerLocked(partition)
		d.partitionOwner[partition] = owner
	}
	ms, ok := d.consuming[partition]
	if !ok {
		ms = newMutableSegment(d.segmentName(partition, d.segSeq[partition]))
		d.consuming[partition] = ms
	}
	superseded := false
	if d.cfg.Upsert {
		pk := conformed.String(d.cfg.Schema.PrimaryKey)
		locs, ok := d.upsertLoc[partition]
		if !ok {
			locs = make(map[string]location)
			d.upsertLoc[partition] = locs
		}
		if old, exists := locs[pk]; exists {
			superseded = true
			if old.segment == "" {
				ms.invalid[old.doc] = true
			} else if sb := d.sealingBatchLocked(partition, old.segment); sb != nil {
				// The superseded row is mid-seal: record it on the batch so
				// the sealed segment's validity bitmap (built at swap time)
				// excludes it.
				sb.invalid[old.doc] = true
			} else {
				d.serverAt(owner).invalidate(old.segment, old.doc)
				// Keep replica validity consistent too.
				for _, ri := range d.placement[old.segment] {
					if ri != owner {
						d.serverAt(ri).invalidate(old.segment, old.doc)
					}
				}
			}
		}
		doc := ms.add(conformed)
		locs[pk] = location{segment: "", doc: doc}
	} else {
		ms.add(conformed)
	}
	d.ingested++
	d.ingestRows.Inc()
	d.lastIngestNanos = time.Now().UnixNano()
	needSeal := len(ms.rows) >= d.cfg.SegmentRows
	// The bump (and hook delivery) happens inside the same critical section
	// that made the row visible, so the generation totally orders this
	// mutation against every routing snapshot — the invariant both the
	// result cache and incremental view maintenance rely on. An upsert
	// supersede is a retraction: the old row left the visible set, which
	// mergeable aggregates cannot undo incrementally.
	d.emitMutationLocked(partition, conformed, superseded)
	d.mu.Unlock()
	if needSeal {
		return d.Seal(partition)
	}
	return nil
}

func (d *Deployment) segmentName(partition, seq int) string {
	return fmt.Sprintf("%s__%d__%d", d.cfg.Name, partition, seq)
}

// Seal converts the partition's consuming segment into an immutable sealed
// segment, places it on replicas and backs it up per the configured mode.
// The rows never become invisible mid-seal: they move to a sealingBatch
// that queries keep serving (routeView folds it into the consuming scan)
// until the sealed segment atomically replaces it in routing — so a cached
// or uncached query racing the seal always sees every row exactly once.
// Upsert supersedes that land while the segment builds accumulate on the
// batch (the future segment name is already in the location map) and are
// applied to the replicas' validity bitmaps at swap time.
func (d *Deployment) Seal(partition int) error {
	sealStart := time.Now()
	d.mu.Lock()
	ms, ok := d.consuming[partition]
	if !ok || len(ms.rows) == 0 {
		d.mu.Unlock()
		return nil
	}
	defer func() { d.sealHist.Observe(time.Since(sealStart)) }()
	//lint:ignore genbump rows move from consuming to the sealing batch below; routeView folds both, so the visible set is unchanged and cached results stay exact — the swap section bumps
	delete(d.consuming, partition)
	seq := d.segSeq[partition]
	d.segSeq[partition] = seq + 1
	owner := d.partitionOwner[partition]
	// Replica placement: owner plus the next Replicas-1 active servers,
	// chosen under the lock so a concurrent membership change cannot hand
	// out a decommissioned target (and re-checked at swap time below).
	replicas := d.replicasForLocked(owner)
	upsertPartition := -1
	if d.cfg.Upsert {
		upsertPartition = partition
	}
	rows := ms.rows
	batch := &sealingBatch{name: ms.name, rows: rows, invalid: ms.invalid}
	//lint:ignore genbump second half of the consuming→sealing handover suppressed above: same rows, same visible set, no invalidation needed until the swap
	d.sealing[partition] = append(d.sealing[partition], batch)
	// invalidSnap is the supersede set as of now; anything added to
	// batch.invalid after this point (concurrent upserts, recorded under
	// mu) is applied to the replicas at swap time.
	invalidSnap := make(map[int]bool, len(ms.invalid))
	for doc, v := range ms.invalid {
		invalidSnap[doc] = v
	}
	if d.cfg.Upsert {
		// Point mutable locations at the future sealed segment now, so
		// supersedes during the build land on the batch (BuildSegment
		// preserves row order for upsert tables, so docs carry over).
		locs := d.upsertLoc[partition]
		for pk, loc := range locs {
			if loc.segment == "" {
				locs[pk] = location{segment: ms.name, doc: loc.doc}
			}
		}
	}
	d.mu.Unlock()

	seg, err := BuildSegment(ms.name, d.cfg.Schema, rows, d.cfg.Indexes, upsertPartition)
	if err != nil {
		d.restoreSealing(partition, batch, seq)
		return err
	}
	var valid *Bitmap
	if d.cfg.Upsert {
		valid = NewBitmap(seg.NumRows)
		valid.Fill()
		// BuildSegment may reorder rows when a sorted column is set; upsert
		// tables therefore must not configure one (Pinot has the same
		// restriction).
		for doc := range invalidSnap {
			valid.Clear(doc)
		}
	}

	switch d.backup {
	case BackupCentralized:
		// Synchronous upload through the single controller; ingestion (this
		// caller) blocks, and a store outage fails the seal.
		d.controller.Lock()
		data, err := seg.Encode()
		if err == nil {
			err = d.store.Put(d.storeKey(seg.Name), data)
		}
		d.controller.Unlock()
		if err != nil {
			// Put the rows back so ingestion can retry after recovery.
			d.restoreSealing(partition, batch, seq)
			return fmt.Errorf("olap: centralized backup of %s: %w", seg.Name, err)
		}
		// Replicas download from the store.
		for _, ri := range replicas {
			d.serverAt(ri).AddSegment(seg, cloneValid(valid))
		}
	case BackupP2P:
		// Peer replication first: the segment is immediately durable across
		// servers and serveable; deep-store upload is async best-effort.
		for _, ri := range replicas {
			d.serverAt(ri).AddSegment(seg, cloneValid(valid))
		}
		d.asyncWG.Add(1)
		go func() {
			defer d.asyncWG.Done()
			data, err := seg.Encode()
			if err == nil {
				err = d.store.Put(d.storeKey(seg.Name), data)
			}
			if err != nil {
				d.mu.Lock()
				d.uploadErrors++
				d.mu.Unlock()
			}
		}()
	}

	d.mu.Lock()
	// A replica may have been decommissioned while the segment built (the
	// install above still landed — decommissioned servers keep serving).
	// Swap it for an active substitute now, inside the placement critical
	// section, so the decommission's drain is not reopened by this seal.
	for i, ri := range replicas {
		if !d.decommissioned[ri] {
			continue
		}
		if sub := d.activeSubstituteLocked(replicas, ri); sub >= 0 {
			d.serverAt(sub).AddSegment(seg, cloneValid(valid))
			d.serverAt(ri).Retire(seg.Name)
			replicas[i] = sub
		}
	}
	d.placement[seg.Name] = replicas
	d.segMeta[seg.Name] = &segMeta{
		partition: partition,
		numRows:   seg.NumRows,
		minTime:   seg.MinTime,
		maxTime:   seg.MaxTime,
	}
	d.sealed++
	if d.cfg.Upsert {
		// Supersedes that landed on the batch after the bitmap snapshot:
		// clear them on every replica (d.mu → s.mu is the established lock
		// order; locations already name the sealed segment).
		for doc := range batch.invalid {
			if !invalidSnap[doc] {
				for _, ri := range replicas {
					d.serverAt(ri).invalidate(seg.Name, doc)
				}
			}
		}
	}
	d.removeSealingLocked(partition, batch)
	// Neutral for view maintenance (the same rows, now sealed) but bumped
	// inside the swap's critical section so the generation keeps totally
	// ordering routing snapshots against mutations.
	d.bumpGen() // rows moved from consuming to sealed; trims/routing may differ
	d.mu.Unlock()
	return nil
}

// removeSealingLocked unlinks a sealing batch. Caller holds d.mu.
func (d *Deployment) removeSealingLocked(partition int, batch *sealingBatch) {
	bs := d.sealing[partition]
	for i, b := range bs {
		if b == batch {
			d.sealing[partition] = append(bs[:i:i], bs[i+1:]...)
			return
		}
	}
}

// restoreSealing aborts a failed seal: the batch's rows move back into the
// consuming segment (merging ahead of any rows ingested while the seal ran,
// with upsert locations re-pointed and re-offset) and the sequence number is
// released so the retry reuses the same segment name.
func (d *Deployment) restoreSealing(partition int, batch *sealingBatch, seq int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.removeSealingLocked(partition, batch)
	restored := newMutableSegment(batch.name)
	restored.rows = append([]record.Record(nil), batch.rows...)
	restored.invalid = batch.invalid
	off := len(batch.rows)
	cur, has := d.consuming[partition]
	if has {
		restored.rows = append(restored.rows, cur.rows...)
		for doc, v := range cur.invalid {
			restored.invalid[doc+off] = v
		}
	}
	if d.cfg.Upsert {
		locs := d.upsertLoc[partition]
		for pk, loc := range locs {
			switch loc.segment {
			case batch.name: // batch rows: same docs, back to mutable
				locs[pk] = location{segment: "", doc: loc.doc}
			case "": // rows ingested during the seal: shifted by the merge
				if has {
					locs[pk] = location{segment: "", doc: loc.doc + off}
				}
			}
		}
	}
	d.consuming[partition] = restored
	// Release the sequence number only if no later seal claimed one in the
	// meantime — rolling back past a concurrent successful seal would
	// reissue its segment name and silently overwrite its placement. The
	// retry reuses batch.name either way (it was never placed or stored).
	if d.segSeq[partition] == seq+1 {
		d.segSeq[partition] = seq
	}
	// The rollback restores the exact pre-seal visible set, but the row→
	// segment attribution changed (batch rows are mutable again); bump so
	// any view or cache entry keyed on the aborted layout refreshes.
	d.bumpGen()
}

func (d *Deployment) storeKey(segment string) string {
	return fmt.Sprintf("segments/%s/%s", d.cfg.Name, segment)
}

func cloneValid(v *Bitmap) *Bitmap {
	if v == nil {
		return nil
	}
	return v.Clone()
}

// WaitUploads blocks until async P2P deep-store uploads settle.
func (d *Deployment) WaitUploads() { d.asyncWG.Wait() }

// Stats reports ingestion counters.
func (d *Deployment) Stats() (ingested, sealed, uploadErrors int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ingested, d.sealed, d.uploadErrors
}

// Broker answers queries over a deployment with scatter-gather-merge: the
// query is decomposed into per-server subqueries over the segments each
// server hosts, executed in parallel (with per-server segment-scan worker
// pools), and the partial-aggregate states are merged as they stream back
// (§4.3). Which server answers each segment is a pluggable Router decision
// (round-robin, replica-group-aware, partition-aware); see router.go. The
// typed entry point is Execute (request.go); Query/QueryCtx are
// conveniences over it.
type Broker struct {
	d    *Deployment
	opts BrokerOptions

	// cache/flight/admit are the qcache subsystem (nil when disabled):
	// bounded LRU result cache, in-flight deduplication, and per-tenant
	// admission control. See brokercache.go.
	cache  *qcache.Cache
	flight *qcache.Group
	admit  *qcache.Admission

	// views serves registered materialized-view shapes ahead of the cache
	// (nil when disabled); see brokercache.go and internal/olap/matview.
	views ViewServer
}

// BrokerOptions tunes query execution.
type BrokerOptions struct {
	// Workers bounds the per-server segment-scan worker pool. 0 means
	// GOMAXPROCS; 1 forces the serial baseline.
	Workers int
	// Timeout is the per-query deadline. 0 means no deadline.
	Timeout time.Duration
	// Router selects the routing strategy for every query of this broker
	// (overridable per request). Nil means the round-robin default, which
	// preserves the §4.3.1 partition-owner strategy for upsert tables.
	Router Router
	// CacheMaxBytes enables the broker result cache with that memory bound
	// (0 disables it). Enabling the cache also enables in-flight
	// deduplication: N concurrent identical queries execute once and share
	// the response. Entries invalidate automatically on any ingest, seal,
	// compaction, offload, drop or recovery of the table. With the cache
	// enabled, QueryResponse.Rows are shared read-only data — callers must
	// copy before mutating (see QueryResponse).
	CacheMaxBytes int64
	// Admission enables per-tenant token-bucket quotas and the bounded
	// execution queue with deadline-aware shedding (typed ErrOverloaded).
	// Nil disables admission control.
	Admission *qcache.AdmissionConfig
	// Views serves registered materialized-view shapes ahead of the result
	// cache: a ConsistencyFull request whose ViewKey matches a registered
	// view is answered from the view's incrementally-maintained state
	// (ExecStats.ViewHit) without routing, scanning, or filling the cache.
	// Typically a *matview.Registry over the same deployment. Nil disables
	// view serving.
	Views ViewServer
	// Tracer enables per-query span tracing: Execute opens a broker.execute
	// root (unless the caller's context already carries a span — the fedsql
	// case — in which case it nests under it), the scatter/merge phases
	// record child spans, and finished traces land in the tracer's recent
	// ring and slow-query log. Nil disables tracing; the disabled-path cost
	// is a nil check per query.
	Tracer *obs.Tracer
}

// NewBroker creates a broker over a deployment with default options
// (parallel scans, no deadline, no cache or admission control).
func NewBroker(d *Deployment) *Broker { return NewBrokerWithOptions(d, BrokerOptions{}) }

// NewBrokerWithOptions creates a broker with explicit execution options.
func NewBrokerWithOptions(d *Deployment, opts BrokerOptions) *Broker {
	b := &Broker{d: d, opts: opts}
	if opts.CacheMaxBytes > 0 {
		b.cache = qcache.NewCache(opts.CacheMaxBytes)
		b.flight = qcache.NewGroup()
		// Pull gauges over the cache: SetGaugeFunc replaces, so the newest
		// broker over a deployment owns the reading (E20 builds several).
		reg, cache, flight := d.Metrics(), b.cache, b.flight
		reg.SetGaugeFunc("qcache_hits_total", func() float64 { return float64(cache.Stats().Hits) })
		reg.SetGaugeFunc("qcache_misses_total", func() float64 { return float64(cache.Stats().Misses) })
		reg.SetGaugeFunc("qcache_evictions_total", func() float64 { return float64(cache.Stats().Evictions) })
		reg.SetGaugeFunc("qcache_entries", func() float64 { return float64(cache.Stats().Entries) })
		reg.SetGaugeFunc("qcache_bytes", func() float64 { return float64(cache.Bytes()) })
		reg.SetGaugeFunc("qcache_coalesced_total", func() float64 { return float64(flight.Coalesced()) })
	}
	if opts.Admission != nil {
		b.admit = qcache.NewAdmission(*opts.Admission)
		reg, admit := d.Metrics(), b.admit
		reg.SetGaugeFunc("admission_shed_total", func() float64 { return float64(admit.Stats().Shed) })
		reg.SetGaugeFunc("admission_queue_len", func() float64 { return float64(admit.Stats().QueueLen) })
	}
	b.views = opts.Views
	return b
}

// Query executes a structured query with the broker's default context.
func (b *Broker) Query(q *Query) (*Result, error) {
	//lint:ignore ctxflow pre-PR-1 convenience entry point kept for callers with no context; QueryCtx is the cancellable API
	return b.QueryCtx(context.Background(), q)
}

// QueryCtx executes a structured query under a caller context with the
// broker's default options — a convenience over Execute. The context (plus
// the broker's configured timeout, when set) cancels the scatter phase:
// per-server subqueries stop between segment scans and the merge aborts.
// Partial-aggregate states (AVG as SUM+COUNT, DISTINCTCOUNT as a value set)
// merge exactly in arrival order, and ORDER-BY-agnostic LIMIT selections
// terminate early once enough rows have been gathered.
func (b *Broker) QueryCtx(ctx context.Context, q *Query) (*Result, error) {
	resp, err := b.Execute(ctx, &QueryRequest{Query: q})
	if err != nil {
		return nil, err
	}
	return &Result{Columns: resp.Columns, Rows: resp.Rows, Stats: resp.Stats}, nil
}
