package olap

import (
	"reflect"
	"testing"

	"repro/internal/objstore"
)

// Time-windowed queries must stay exact on consuming (unsealed) rows too:
// consuming segments have no prunable bounds, so the window applies as a
// row predicate during the raw-row scan.
func TestTimeWindowOnConsumingSegment(t *testing.T) {
	d, _ := newDeployment(t, 1, 1, false, BackupP2P, nil)
	rows := orderRows(30) // below the 50-row seal threshold: stays consuming
	for _, r := range rows {
		if err := d.Ingest(0, r); err != nil {
			t.Fatal(err)
		}
	}
	from, to := int64(1700000000000+5*1000), int64(1700000000000+14*1000)
	q := &Query{
		Time: &TimeRange{From: from, To: to},
		Aggs: []AggSpec{{Kind: AggCount}},
	}
	res, err := NewBroker(d).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for _, r := range rows {
		if ts := r.Long("ts"); ts >= from && ts <= to {
			want++
		}
	}
	if got := res.Rows[0][0].(int64); got != want {
		t.Errorf("windowed consuming count = %d, want %d", got, want)
	}
}

// A time window that only partially overlaps a segment must bypass the
// star-tree (pre-aggregates can't apply the time predicate), while a window
// containing the whole segment keeps the fast path.
func TestStarTreeVsTimeWindow(t *testing.T) {
	rows := orderRows(400)
	seg, err := BuildSegment("st", ordersSchema(), rows, IndexConfig{
		StarTree: &StarTreeConfig{Dimensions: []string{"city"}, Metrics: []string{"amount"}},
	}, -1)
	if err != nil {
		t.Fatal(err)
	}
	base := &Query{GroupBy: []string{"city"}, Aggs: []AggSpec{{Kind: AggSum, Column: "amount"}}}

	full := *base
	full.Time = &TimeRange{From: seg.MinTime, To: seg.MaxTime}
	res, err := seg.Execute(&full, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StarTreeServed != 1 {
		t.Error("containing window should keep the star-tree fast path")
	}

	partial := *base
	partial.Time = &TimeRange{From: seg.MinTime, To: seg.MinTime + 100*1000}
	got, err := seg.Execute(&partial, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.StarTreeServed != 0 {
		t.Error("partial window must bypass the star-tree")
	}
	explicit := *base
	explicit.Filters = []Filter{{Column: "ts", Op: OpBetween, Value: partial.Time.From, Value2: partial.Time.To}}
	want, err := seg.Execute(&explicit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("windowed star-tree segment differs from explicit filter:\n got %v\nwant %v", got.Rows, want.Rows)
	}
}

// Server-level pruning: out-of-window segments are skipped before any scan
// and reported, and an all-pruned query still finalizes correctly.
func TestServerTimePruning(t *testing.T) {
	d, _ := newDeployment(t, 1, 1, false, BackupP2P, objstore.NewMemStore())
	ingestOrders(t, d, 200, 1) // 4 sealed segments of 50 rows
	q := &Query{
		Time: &TimeRange{From: 0, To: 1}, // far before all data
		Aggs: []AggSpec{{Kind: AggCount}},
	}
	res, err := NewBroker(d).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SegmentsPruned != 4 || res.Stats.SegmentsScanned != 0 {
		t.Errorf("pruned=%d scanned=%d, want 4/0", res.Stats.SegmentsPruned, res.Stats.SegmentsScanned)
	}
	if got := res.Rows[0][0].(int64); got != 0 {
		t.Errorf("all-pruned count = %d, want 0", got)
	}
}
