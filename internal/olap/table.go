package olap

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metadata"
	"repro/internal/record"
)

// TableConfig declares one OLAP table.
type TableConfig struct {
	// Name is the table name.
	Name string
	// Schema describes the columns; TimeField drives segment time bounds
	// and PrimaryKey (with Upsert) the upsert key.
	Schema *metadata.Schema
	// Indexes configure segment index structures.
	Indexes IndexConfig
	// SegmentRows is the consuming-segment seal threshold. Default 1000.
	SegmentRows int
	// Upsert enables exactly-once-by-key semantics (§4.3.1); requires
	// Schema.PrimaryKey and a partitioned input keyed by it.
	Upsert bool
	// Replicas is the number of servers holding each sealed segment.
	// Default 1.
	Replicas int
}

func (c TableConfig) withDefaults() (TableConfig, error) {
	if c.Name == "" {
		return c, fmt.Errorf("olap: table has no name")
	}
	if c.Schema == nil {
		return c, fmt.Errorf("olap: table %q has no schema", c.Name)
	}
	if err := c.Schema.Validate(); err != nil {
		return c, err
	}
	if c.Upsert && c.Schema.PrimaryKey == "" {
		return c, fmt.Errorf("olap: upsert table %q needs a primary key", c.Name)
	}
	if c.Upsert && c.Indexes.SortedColumn != "" {
		// Sorting a segment at build time reorders doc IDs, which would
		// break the upsert location map (same restriction as Pinot).
		return c, fmt.Errorf("olap: upsert table %q cannot use a sorted column", c.Name)
	}
	if c.SegmentRows <= 0 {
		c.SegmentRows = 1000
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	return c, nil
}

// mutableSegment is the consuming (in-flight) segment of one partition:
// plain rows queried by scan, plus an invalid set for upsert supersedes.
type mutableSegment struct {
	name    string
	rows    []record.Record
	invalid map[int]bool // docID -> superseded
}

func newMutableSegment(name string) *mutableSegment {
	return &mutableSegment{name: name, invalid: make(map[int]bool)}
}

func (m *mutableSegment) add(r record.Record) int {
	m.rows = append(m.rows, r)
	return len(m.rows) - 1
}

// executeRows runs a query by scanning raw rows — how consuming segments
// answer queries before sealing. valid(i) gates upsert-superseded docs.
func executeRows(schema *metadata.Schema, rows []record.Record, q *Query, valid func(int) bool) (*Result, error) {
	match := func(r record.Record) (bool, error) {
		for _, f := range q.Filters {
			ok, err := rowMatches(schema, r, f)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}
	if len(q.Aggs) > 0 {
		groups := make(map[string]*groupAgg)
		for i, r := range rows {
			if valid != nil && !valid(i) {
				continue
			}
			ok, err := match(r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			var kb strings.Builder
			values := make([]any, len(q.GroupBy))
			for gi, g := range q.GroupBy {
				values[gi] = r[g]
				fmt.Fprintf(&kb, "%v|", r[g])
			}
			g, ok2 := groups[kb.String()]
			if !ok2 {
				g = newGroupAgg(q, values)
				groups[kb.String()] = g
			}
			for ai, spec := range q.Aggs {
				switch {
				case spec.Kind == AggCount && spec.Column == "":
					g.aggs[ai].Count++
				case spec.Kind == AggCount:
					if _, has := r[spec.Column]; has {
						g.aggs[ai].Count++
					}
				default:
					if _, has := r[spec.Column]; has {
						g.aggs[ai].add(r.Double(spec.Column))
					}
				}
			}
		}
		res := buildGroupResult(q, groups)
		res.Stats.RowsScanned = int64(len(rows))
		return res, nil
	}
	cols := q.Select
	if len(cols) == 0 {
		cols = schema.FieldNames()
	}
	res := &Result{Columns: append([]string(nil), cols...)}
	for i, r := range rows {
		if valid != nil && !valid(i) {
			continue
		}
		ok, err := match(r)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		row := make([]any, len(cols))
		for ci, c := range cols {
			row[ci] = r[c]
		}
		res.Rows = append(res.Rows, row)
		if q.Limit > 0 && len(q.OrderBy) == 0 && len(res.Rows) >= q.Limit {
			break
		}
	}
	res.Stats.RowsScanned = int64(len(rows))
	return res, nil
}

func rowMatches(schema *metadata.Schema, r record.Record, f Filter) (bool, error) {
	field, ok := schema.Field(f.Column)
	if !ok {
		return false, fmt.Errorf("olap: unknown filter column %q", f.Column)
	}
	v, has := r[f.Column]
	if !has || v == nil {
		return false, nil
	}
	cmp := func(a, b any) int {
		if field.Type == metadata.TypeString {
			return strings.Compare(fmt.Sprintf("%v", a), fmt.Sprintf("%v", b))
		}
		fa, _ := toF64(a)
		fb, _ := toF64(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	switch f.Op {
	case OpEq:
		return cmp(v, f.Value) == 0, nil
	case OpNe:
		return cmp(v, f.Value) != 0, nil
	case OpLt:
		return cmp(v, f.Value) < 0, nil
	case OpLe:
		return cmp(v, f.Value) <= 0, nil
	case OpGt:
		return cmp(v, f.Value) > 0, nil
	case OpGe:
		return cmp(v, f.Value) >= 0, nil
	case OpBetween:
		return cmp(v, f.Value) >= 0 && cmp(v, f.Value2) <= 0, nil
	case OpIn:
		for _, want := range f.Values {
			if cmp(v, want) == 0 {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("olap: unsupported op %d", f.Op)
	}
}

// MergeResults combines per-segment/per-server partial results: group
// aggregates merge by group key; selection rows concatenate. The final
// ORDER BY / LIMIT applies after the merge (scatter-gather-merge, §4.3).
func MergeResults(q *Query, parts []*Result) (*Result, error) {
	if len(parts) == 0 {
		cols := append([]string(nil), q.GroupBy...)
		for _, a := range q.Aggs {
			cols = append(cols, a.outName())
		}
		if len(q.Aggs) == 0 {
			cols = append([]string(nil), q.Select...)
		}
		res := &Result{Columns: cols}
		if len(q.Aggs) > 0 && len(q.GroupBy) == 0 {
			// Global aggregate over an empty table: one zero row.
			row := make([]any, 0, len(q.Aggs))
			for _, spec := range q.Aggs {
				row = append(row, aggValue(starAgg{}, spec.Kind))
			}
			res.Rows = append(res.Rows, row)
		}
		return res, nil
	}
	merged := &Result{Columns: parts[0].Columns}
	for _, p := range parts {
		merged.Stats.SegmentsScanned += p.Stats.SegmentsScanned
		merged.Stats.RowsScanned += p.Stats.RowsScanned
		merged.Stats.StarTreeServed += p.Stats.StarTreeServed
		merged.Stats.UpsertFiltered += p.Stats.UpsertFiltered
	}
	if len(q.Aggs) == 0 {
		for _, p := range parts {
			merged.Rows = append(merged.Rows, p.Rows...)
		}
		if err := sortAndLimit(merged, q); err != nil {
			return nil, err
		}
		return merged, nil
	}
	// Re-group by the group-by columns.
	nG := len(q.GroupBy)
	type acc struct {
		values []any
		aggs   []starAgg
	}
	groups := make(map[string]*acc)
	var order []string
	for _, p := range parts {
		for _, row := range p.Rows {
			var kb strings.Builder
			for i := 0; i < nG; i++ {
				fmt.Fprintf(&kb, "%v|", row[i])
			}
			k := kb.String()
			g, ok := groups[k]
			if !ok {
				g = &acc{values: append([]any(nil), row[:nG]...), aggs: make([]starAgg, len(q.Aggs))}
				groups[k] = g
				order = append(order, k)
			}
			for ai, spec := range q.Aggs {
				v := row[nG+ai]
				mergePartialAgg(&g.aggs[ai], spec.Kind, v)
			}
		}
	}
	sort.Strings(order)
	for _, k := range order {
		g := groups[k]
		row := append([]any(nil), g.values...)
		for ai, spec := range q.Aggs {
			row = append(row, aggValue(g.aggs[ai], spec.Kind))
		}
		merged.Rows = append(merged.Rows, row)
	}
	if err := sortAndLimit(merged, q); err != nil {
		return nil, err
	}
	return merged, nil
}

// mergePartialAgg folds a partial aggregate value into an accumulator.
// AVG cannot be merged from averages, so segment executors return AVG as
// sum and count via the starAgg path — here we reconstruct conservatively:
// partial results produced by this package carry exact sums for AggAvg via
// aggValue only at the final merge. To keep merges exact, executors in this
// package are always merged through MergeResults at most once per level
// with COUNT piggybacked; AVG at the broker uses SUM/COUNT pairs internally.
func mergePartialAgg(a *starAgg, kind AggKind, v any) {
	f, _ := toF64(v)
	switch kind {
	case AggCount:
		a.Count += int64(f)
	case AggSum:
		a.Sum += f
		a.Count++
	case AggMin:
		if a.Count == 0 || f < a.Min {
			a.Min = f
		}
		a.Count++
	case AggMax:
		if a.Count == 0 || f > a.Max {
			a.Max = f
		}
		a.Count++
	case AggAvg:
		// Weighted merge is impossible from a bare average; the broker
		// rewrites AVG to SUM+COUNT before scattering (see Broker.Query).
		a.Sum += f
		a.Count++
	}
}
