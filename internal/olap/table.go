package olap

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/metadata"
	"repro/internal/record"
)

// TableConfig declares one OLAP table.
type TableConfig struct {
	// Name is the table name.
	Name string
	// Schema describes the columns; TimeField drives segment time bounds
	// and PrimaryKey (with Upsert) the upsert key.
	Schema *metadata.Schema
	// Indexes configure segment index structures.
	Indexes IndexConfig
	// SegmentRows is the consuming-segment seal threshold. Default 1000.
	SegmentRows int
	// Upsert enables exactly-once-by-key semantics (§4.3.1); requires
	// Schema.PrimaryKey and a partitioned input keyed by it.
	Upsert bool
	// Replicas is the number of servers holding each sealed segment.
	// Default 1.
	Replicas int
	// PartitionColumn, with Partitions, declares the input partition
	// function: every record must be ingested on partition
	// PartitionFor(record[PartitionColumn], Partitions) — Ingest enforces
	// it. Declaring the function lets the partition-aware router prune
	// servers for queries with equality filters on the column (§4.3).
	// Optional; leave empty for tables partitioned by external logic.
	PartitionColumn string
	// Partitions is the input partition count; required (> 0) when
	// PartitionColumn is set.
	Partitions int
}

func (c TableConfig) withDefaults() (TableConfig, error) {
	if c.Name == "" {
		return c, fmt.Errorf("olap: table has no name")
	}
	if c.Schema == nil {
		return c, fmt.Errorf("olap: table %q has no schema", c.Name)
	}
	if err := c.Schema.Validate(); err != nil {
		return c, err
	}
	if c.Upsert && c.Schema.PrimaryKey == "" {
		return c, fmt.Errorf("olap: upsert table %q needs a primary key", c.Name)
	}
	if c.Upsert && c.Indexes.SortedColumn != "" {
		// Sorting a segment at build time reorders doc IDs, which would
		// break the upsert location map (same restriction as Pinot).
		return c, fmt.Errorf("olap: upsert table %q cannot use a sorted column", c.Name)
	}
	if c.PartitionColumn != "" {
		if _, ok := c.Schema.Field(c.PartitionColumn); !ok {
			return c, fmt.Errorf("olap: table %q partition column %q is not a schema field", c.Name, c.PartitionColumn)
		}
		if c.Partitions <= 0 {
			return c, fmt.Errorf("olap: table %q declares partition column %q without a partition count", c.Name, c.PartitionColumn)
		}
	}
	if c.SegmentRows <= 0 {
		c.SegmentRows = 1000
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	return c, nil
}

// mutableSegment is the consuming (in-flight) segment of one partition:
// plain rows queried by scan, plus an invalid set for upsert supersedes.
type mutableSegment struct {
	name    string
	rows    []record.Record
	invalid map[int]bool // docID -> superseded
}

func newMutableSegment(name string) *mutableSegment {
	return &mutableSegment{name: name, invalid: make(map[int]bool)}
}

func (m *mutableSegment) add(r record.Record) int {
	m.rows = append(m.rows, r)
	return len(m.rows) - 1
}

// executeRows runs a query by scanning raw rows — how consuming segments
// answer queries before sealing — and returns a mergeable partial keyed the
// same way as sealed-segment partials. valid(i) gates upsert-superseded
// docs; ctx cancellation is honored between row batches so a timed-out
// query does not keep scanning a large consuming segment.
func executeRows(ctx context.Context, schema *metadata.Schema, rows []record.Record, q *Query, valid func(int) bool) (*Partial, error) {
	match := func(r record.Record) (bool, error) {
		if q.Time != nil && schema.TimeField != "" {
			if t := r.Long(schema.TimeField); t < q.Time.From || t > q.Time.To {
				return false, nil
			}
		}
		for _, f := range q.Filters {
			ok, err := rowMatches(schema, r, f)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}
	const ctxCheckEvery = 1024
	if len(q.Aggs) > 0 {
		for _, a := range q.Aggs {
			if a.Kind == AggDistinctCount && a.Column == "" {
				return nil, fmt.Errorf("olap: distinctcount requires a column")
			}
			if a.Column != "" {
				if f, ok := schema.Field(a.Column); ok {
					if err := aggTypeError(a.Kind, a.Column, f.Type); err != nil {
						return nil, err
					}
				}
			}
		}
		groups := make(map[string]*groupAgg)
		for i, r := range rows {
			if i%ctxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if valid != nil && !valid(i) {
				continue
			}
			ok, err := match(r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			values := make([]any, len(q.GroupBy))
			for gi, g := range q.GroupBy {
				values[gi] = r[g]
			}
			key := groupValueKey(values)
			g, ok2 := groups[key]
			if !ok2 {
				g = newGroupAgg(q, values)
				groups[key] = g
			}
			for ai, spec := range q.Aggs {
				switch {
				case spec.Kind == AggCount && spec.Column == "":
					g.aggs[ai].Count++
				case spec.Kind == AggCount:
					if _, has := r[spec.Column]; has {
						g.aggs[ai].Count++
					}
				case spec.Kind == AggDistinctCount:
					if v, has := r[spec.Column]; has && v != nil {
						g.aggs[ai].addDistinct(distinctKey(v))
					}
				default:
					if _, has := r[spec.Column]; has {
						g.aggs[ai].add(r.Double(spec.Column))
					}
				}
			}
		}
		p := &Partial{agg: true, groups: groups}
		p.stats.RowsScanned = int64(len(rows))
		return p, nil
	}
	cols := q.Select
	if len(cols) == 0 {
		cols = schema.FieldNames()
	}
	p := &Partial{cols: append([]string(nil), cols...)}
	for i, r := range rows {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if valid != nil && !valid(i) {
			continue
		}
		ok, err := match(r)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		row := make([]any, len(cols))
		for ci, c := range cols {
			row[ci] = r[c]
		}
		p.rows = append(p.rows, row)
		if q.Limit > 0 && len(q.OrderBy) == 0 && len(p.rows) >= q.Limit+q.Offset {
			break
		}
	}
	p.stats.RowsScanned = int64(len(rows))
	return p, nil
}

func rowMatches(schema *metadata.Schema, r record.Record, f Filter) (bool, error) {
	field, ok := schema.Field(f.Column)
	if !ok {
		return false, fmt.Errorf("olap: unknown filter column %q", f.Column)
	}
	v, has := r[f.Column]
	if !has || v == nil {
		return false, nil
	}
	cmp := func(a, b any) int {
		if field.Type == metadata.TypeString {
			return strings.Compare(fmt.Sprintf("%v", a), fmt.Sprintf("%v", b))
		}
		fa, _ := toF64(a)
		fb, _ := toF64(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	switch f.Op {
	case OpEq:
		return cmp(v, f.Value) == 0, nil
	case OpNe:
		return cmp(v, f.Value) != 0, nil
	case OpLt:
		return cmp(v, f.Value) < 0, nil
	case OpLe:
		return cmp(v, f.Value) <= 0, nil
	case OpGt:
		return cmp(v, f.Value) > 0, nil
	case OpGe:
		return cmp(v, f.Value) >= 0, nil
	case OpBetween:
		return cmp(v, f.Value) >= 0 && cmp(v, f.Value2) <= 0, nil
	case OpIn:
		for _, want := range f.Values {
			if cmp(v, want) == 0 {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("olap: unsupported op %d", f.Op)
	}
}
