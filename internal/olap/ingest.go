package olap

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/record"
	"repro/internal/stream"
)

// RealtimeIngester consumes a topic from the stream layer into a table
// deployment, one goroutine per input partition — the realtime side of
// Pinot's lambda architecture (§4.3). Partition i of the topic feeds
// ingestion partition i, which for upsert tables is exactly the "organize
// the input stream into multiple partitions by the primary key, and
// distribute each partition to a node" scheme of §4.3.1.
type RealtimeIngester struct {
	cluster *stream.Cluster
	topic   string
	codec   *record.Codec
	d       *Deployment
	batch   int

	positions []atomic.Int64
	errs      atomic.Int64
	lastErr   atomic.Value // error

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRealtimeIngester wires topic → deployment. The topic must already
// exist; ingestion starts from the earliest retained offsets.
func NewRealtimeIngester(cluster *stream.Cluster, topic string, codec *record.Codec, d *Deployment) (*RealtimeIngester, error) {
	n, err := cluster.Partitions(topic)
	if err != nil {
		return nil, err
	}
	ri := &RealtimeIngester{
		cluster:   cluster,
		topic:     topic,
		codec:     codec,
		d:         d,
		batch:     128,
		positions: make([]atomic.Int64, n),
		stop:      make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		low, _, err := cluster.Watermarks(stream.TopicPartition{Topic: topic, Partition: i})
		if err != nil {
			return nil, err
		}
		ri.positions[i].Store(low)
	}
	// Ingestion health as pull gauges on the deployment registry: the rate
	// counter (olap_ingest_rows_total) is already maintained by Ingest; lag
	// and errors are sampled at snapshot time.
	reg := d.Metrics()
	reg.SetGaugeFunc("ingest_lag_rows", func() float64 { return float64(ri.Lag()) })
	reg.SetGaugeFunc("ingest_errors_total", func() float64 {
		n, _ := ri.Errors()
		return float64(n)
	})
	return ri, nil
}

// Start launches the per-partition ingestion loops.
func (ri *RealtimeIngester) Start() {
	for p := range ri.positions {
		ri.wg.Add(1)
		go ri.consumePartition(p)
	}
}

// Stop halts ingestion and waits for the loops to exit.
func (ri *RealtimeIngester) Stop() {
	select {
	case <-ri.stop:
	default:
		close(ri.stop)
	}
	ri.wg.Wait()
}

// Lag returns the total unconsumed backlog across partitions.
func (ri *RealtimeIngester) Lag() int64 {
	var lag int64
	for p := range ri.positions {
		_, high, err := ri.cluster.Watermarks(stream.TopicPartition{Topic: ri.topic, Partition: p})
		if err != nil {
			continue
		}
		if d := high - ri.positions[p].Load(); d > 0 {
			lag += d
		}
	}
	return lag
}

// Errors returns the count of ingestion errors (decode or seal failures)
// and the most recent one.
func (ri *RealtimeIngester) Errors() (int64, error) {
	n := ri.errs.Load()
	if err, ok := ri.lastErr.Load().(error); ok {
		return n, err
	}
	return n, nil
}

// IngestStats is a point-in-time snapshot of ingestion health: the error
// counters the consume loops maintain plus the current backlog — what an
// operator dashboard (or test) polls to see whether ingestion is keeping
// up and why not.
type IngestStats struct {
	// Errors counts decode failures (corrupt messages, skipped) and seal
	// failures (segment-store outages, retried).
	Errors int64
	// LastErr is the most recent ingestion error (nil when none).
	LastErr error
	// Lag is the total unconsumed backlog across partitions.
	Lag int64
}

// Stats snapshots the ingester's health counters.
func (ri *RealtimeIngester) Stats() IngestStats {
	n, err := ri.Errors()
	return IngestStats{Errors: n, LastErr: err, Lag: ri.Lag()}
}

func (ri *RealtimeIngester) consumePartition(p int) {
	defer ri.wg.Done()
	tp := stream.TopicPartition{Topic: ri.topic, Partition: p}
	for {
		select {
		case <-ri.stop:
			return
		default:
		}
		pos := ri.positions[p].Load()
		msgs, err := ri.cluster.Fetch(tp, pos, ri.batch)
		if err != nil {
			// Retention may have advanced; skip to the low watermark.
			if low, _, werr := ri.cluster.Watermarks(tp); werr == nil && pos < low {
				ri.positions[p].Store(low)
				continue
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if len(msgs) == 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		blocked := false
		for _, m := range msgs {
			r, err := ri.codec.Decode(m.Value)
			if err != nil {
				// Corrupt message: count it and move on (it can never
				// succeed, unlike a seal failure).
				ri.errs.Add(1)
				ri.lastErr.Store(err)
				ri.positions[p].Store(m.Offset + 1)
				continue
			}
			if err := ri.d.Ingest(p, r); err != nil {
				ri.errs.Add(1)
				ri.lastErr.Store(err)
				// A failed seal (centralized backup outage) blocks this
				// partition at the failed message: retry after a pause
				// rather than dropping it — exactly the "all data
				// ingestion comes to a halt" behavior of §4.3.4.
				ri.positions[p].Store(m.Offset)
				blocked = true
				break
			}
			ri.positions[p].Store(m.Offset + 1)
		}
		if blocked {
			time.Sleep(5 * time.Millisecond)
		}
	}
}
