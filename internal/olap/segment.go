package olap

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/metadata"
	"repro/internal/record"
)

// dictionary holds the sorted distinct values of one column. Codes are
// positions in sorted order, so range predicates become code ranges — the
// property the range "index" exploits.
type dictionary struct {
	Typ  metadata.FieldType
	Strs []string  // sorted, for string columns
	Nums []float64 // sorted, for numeric/bool columns (longs stored exactly up to 2^53)
}

func (d *dictionary) size() int {
	if d.Typ == metadata.TypeString {
		return len(d.Strs)
	}
	return len(d.Nums)
}

// lookup returns the code for a value, or -1 when absent.
func (d *dictionary) lookup(v any) int {
	if d.Typ == metadata.TypeString {
		s, ok := v.(string)
		if !ok {
			return -1
		}
		i := sort.SearchStrings(d.Strs, s)
		if i < len(d.Strs) && d.Strs[i] == s {
			return i
		}
		return -1
	}
	f, ok := toF64(v)
	if !ok {
		return -1
	}
	i := sort.SearchFloat64s(d.Nums, f)
	if i < len(d.Nums) && d.Nums[i] == f {
		return i
	}
	return -1
}

// codeRange returns the half-open code interval [lo, hi) of values in
// [min, max] (inclusive bounds; nil bound = open side).
func (d *dictionary) codeRange(min, max any) (int, int) {
	lo, hi := 0, d.size()
	if d.Typ == metadata.TypeString {
		if min != nil {
			if s, ok := min.(string); ok {
				lo = sort.SearchStrings(d.Strs, s)
			}
		}
		if max != nil {
			if s, ok := max.(string); ok {
				hi = sort.Search(len(d.Strs), func(i int) bool { return d.Strs[i] > s })
			}
		}
		return lo, hi
	}
	if min != nil {
		if f, ok := toF64(min); ok {
			lo = sort.SearchFloat64s(d.Nums, f)
		}
	}
	if max != nil {
		if f, ok := toF64(max); ok {
			hi = sort.Search(len(d.Nums), func(i int) bool { return d.Nums[i] > f })
		}
	}
	return lo, hi
}

// value returns the decoded value for a code.
func (d *dictionary) value(code int) any {
	if d.Typ == metadata.TypeString {
		return d.Strs[code]
	}
	f := d.Nums[code]
	switch d.Typ {
	case metadata.TypeLong, metadata.TypeTimestamp:
		return int64(f)
	case metadata.TypeBool:
		return f != 0
	default:
		return f
	}
}

func (d *dictionary) memBytes() int64 {
	var n int64 = 48
	for _, s := range d.Strs {
		n += int64(len(s)) + 16
	}
	n += int64(len(d.Nums) * 8)
	return n
}

func toF64(v any) (float64, bool) { return record.ToFloat64(v) }

// packedInts stores n small non-negative ints bit-packed at the minimal
// width — Pinot's "bit compressed forward indices" that the paper credits
// for its smaller footprint vs Druid (§4.3).
type packedInts struct {
	Bits uint
	N    int
	Data []uint64
}

func newPackedInts(values []int, maxValue int) packedInts {
	bits := uint(1)
	for (1 << bits) <= maxValue {
		bits++
	}
	p := packedInts{Bits: bits, N: len(values), Data: make([]uint64, (len(values)*int(bits)+63)/64)}
	for i, v := range values {
		p.set(i, uint64(v))
	}
	return p
}

func (p *packedInts) set(i int, v uint64) {
	bitPos := i * int(p.Bits)
	word, off := bitPos/64, uint(bitPos%64)
	p.Data[word] |= v << off
	if off+p.Bits > 64 {
		p.Data[word+1] |= v >> (64 - off)
	}
}

// Get returns the i-th packed value.
func (p *packedInts) Get(i int) int {
	bitPos := i * int(p.Bits)
	word, off := bitPos/64, uint(bitPos%64)
	v := p.Data[word] >> off
	if off+p.Bits > 64 {
		v |= p.Data[word+1] << (64 - off)
	}
	return int(v & ((1 << p.Bits) - 1))
}

func (p *packedInts) memBytes() int64 { return int64(len(p.Data)*8) + 24 }

// column is one dictionary-encoded column with optional secondary indexes.
type column struct {
	Field    metadata.Field
	Dict     dictionary
	Codes    packedInts
	Present  *Bitmap
	Inverted []*Bitmap // code -> row bitmap; nil when the index is disabled
	Sorted   bool      // rows are sorted by this column (codes non-decreasing)
}

func (c *column) memBytes() int64 {
	n := c.Dict.memBytes() + c.Codes.memBytes() + c.Present.MemBytes()
	for _, bm := range c.Inverted {
		if bm != nil {
			n += bm.MemBytes()
		}
	}
	return n
}

// IndexConfig selects the per-table index structures — the knobs the
// Druid-comparison experiment (E4) ablates.
type IndexConfig struct {
	// InvertedColumns get a code→bitmap inverted index.
	InvertedColumns []string
	// SortedColumn, when set, sorts segment rows by this column at build
	// time, enabling binary-search run lookup.
	SortedColumn string
	// StarTree enables the star-tree pre-aggregation index.
	StarTree *StarTreeConfig
	// NoDictionary disables nothing here (dictionaries are always on);
	// reserved for parity with Pinot configs.
	NoDictionary bool
}

func (ic IndexConfig) inverted(col string) bool {
	for _, c := range ic.InvertedColumns {
		if c == col {
			return true
		}
	}
	return false
}

// Segment is an immutable columnar chunk of a table — the unit of storage,
// replication, backup and query fan-out.
type Segment struct {
	Name    string
	Schema  *metadata.Schema
	NumRows int
	Columns map[string]*column
	Tree    *StarTree // nil unless configured
	MinTime int64
	MaxTime int64
	Sealed  bool
	// Partition is the upsert partition this segment belongs to (-1 when
	// the table is not upsert-enabled).
	Partition int
}

// BuildSegment constructs an immutable segment from rows. Rows are
// dictionary-encoded per column; secondary indexes follow cfg.
func BuildSegment(name string, schema *metadata.Schema, rows []record.Record, cfg IndexConfig, partition int) (*Segment, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("olap: segment %q has no rows", name)
	}
	// Sort rows by the sorted column first (segment-local clustering).
	if cfg.SortedColumn != "" {
		f, ok := schema.Field(cfg.SortedColumn)
		if !ok {
			return nil, fmt.Errorf("olap: sorted column %q not in schema", cfg.SortedColumn)
		}
		rows = append([]record.Record(nil), rows...)
		if f.Type == metadata.TypeString {
			sort.SliceStable(rows, func(i, j int) bool {
				return rows[i].String(cfg.SortedColumn) < rows[j].String(cfg.SortedColumn)
			})
		} else {
			sort.SliceStable(rows, func(i, j int) bool {
				return rows[i].Double(cfg.SortedColumn) < rows[j].Double(cfg.SortedColumn)
			})
		}
	}
	seg := &Segment{
		Name:      name,
		Schema:    schema.Clone(),
		NumRows:   len(rows),
		Columns:   make(map[string]*column, len(schema.Fields)),
		Sealed:    true,
		Partition: partition,
	}
	for _, f := range schema.Fields {
		if f.Type == metadata.TypeBytes {
			continue // blobs are not queryable; skip columnar encoding
		}
		col, err := buildColumn(f, rows, cfg)
		if err != nil {
			return nil, err
		}
		seg.Columns[f.Name] = col
	}
	if schema.TimeField != "" {
		seg.MinTime, seg.MaxTime = timeBounds(rows, schema.TimeField)
	}
	if cfg.StarTree != nil {
		tree, err := buildStarTree(seg, *cfg.StarTree)
		if err != nil {
			return nil, err
		}
		seg.Tree = tree
	}
	return seg, nil
}

func timeBounds(rows []record.Record, field string) (int64, int64) {
	min, max := rows[0].Long(field), rows[0].Long(field)
	for _, r := range rows[1:] {
		t := r.Long(field)
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	return min, max
}

func buildColumn(f metadata.Field, rows []record.Record, cfg IndexConfig) (*column, error) {
	present := NewBitmap(len(rows))
	dict := dictionary{Typ: f.Type}
	if f.Type == metadata.TypeString {
		uniq := make(map[string]bool)
		for i, r := range rows {
			if v, ok := r[f.Name]; ok && v != nil {
				present.Set(i)
				uniq[r.String(f.Name)] = true
			}
		}
		dict.Strs = make([]string, 0, len(uniq))
		for s := range uniq {
			dict.Strs = append(dict.Strs, s)
		}
		sort.Strings(dict.Strs)
	} else {
		uniq := make(map[float64]bool)
		for i, r := range rows {
			if v, ok := r[f.Name]; ok && v != nil {
				present.Set(i)
				fv, ok := toF64(v)
				if !ok {
					return nil, fmt.Errorf("olap: column %q row %d: non-numeric %T", f.Name, i, v)
				}
				uniq[fv] = true
			}
		}
		dict.Nums = make([]float64, 0, len(uniq))
		for v := range uniq {
			dict.Nums = append(dict.Nums, v)
		}
		sort.Float64s(dict.Nums)
	}
	codes := make([]int, len(rows))
	maxCode := dict.size() // code==size() reserved for null
	for i, r := range rows {
		if !present.Get(i) {
			codes[i] = maxCode
			continue
		}
		var code int
		if f.Type == metadata.TypeString {
			code = dict.lookup(r.String(f.Name))
		} else {
			fv, _ := toF64(r[f.Name])
			code = dict.lookup(fv)
		}
		codes[i] = code
	}
	col := &column{
		Field:   f,
		Dict:    dict,
		Codes:   newPackedInts(codes, maxCode),
		Present: present,
		Sorted:  cfg.SortedColumn == f.Name,
	}
	if cfg.inverted(f.Name) {
		col.Inverted = make([]*Bitmap, dict.size())
		for i, code := range codes {
			if code == maxCode {
				continue
			}
			if col.Inverted[code] == nil {
				col.Inverted[code] = NewBitmap(len(rows))
			}
			col.Inverted[code].Set(i)
		}
	}
	return col, nil
}

// MemBytes approximates the segment's in-memory footprint.
func (s *Segment) MemBytes() int64 {
	var n int64 = 128
	for _, c := range s.Columns {
		n += c.memBytes()
	}
	if s.Tree != nil {
		n += s.Tree.memBytes()
	}
	return n
}

// Encode serializes the segment for the segment store / deep archival. The
// bit-packed columnar structures serialize compactly, which is what the
// disk-footprint experiment (E3) measures against the document store.
func (s *Segment) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("olap: encoding segment %q: %w", s.Name, err)
	}
	return buf.Bytes(), nil
}

// DecodeSegment parses a segment serialized by Encode.
func DecodeSegment(data []byte) (*Segment, error) {
	var s Segment
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("olap: decoding segment: %w", err)
	}
	return &s, nil
}

// DecodeRows reconstructs the segment's rows as records in doc-ID order —
// the input compaction feeds back through BuildSegment when merging many
// small sealed segments into one. Columns the segment never encoded
// (TypeBytes blobs) are absent from the decoded rows, matching what any
// query could observe.
func (s *Segment) DecodeRows() []record.Record {
	rows := make([]record.Record, s.NumRows)
	for i := range rows {
		r := make(record.Record, len(s.Columns))
		for name := range s.Columns {
			if v := s.value(name, i); v != nil {
				r[name] = v
			}
		}
		rows[i] = r
	}
	return rows
}

// value returns the decoded value of a column at a row (nil when absent).
func (s *Segment) value(col string, row int) any {
	c, ok := s.Columns[col]
	if !ok || !c.Present.Get(row) {
		return nil
	}
	return c.Dict.value(c.Codes.Get(row))
}

// double returns a column's numeric value at a row (0 when absent).
func (s *Segment) double(col string, row int) float64 {
	c, ok := s.Columns[col]
	if !ok || !c.Present.Get(row) {
		return 0
	}
	code := c.Codes.Get(row)
	if c.Field.Type == metadata.TypeString {
		return 0
	}
	return c.Dict.Nums[code]
}
