package olap

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/objstore"
	"repro/internal/record"
)

// partitionedCities returns one city name per partition: cities[p] hashes to
// partition p under the canonical PartitionFor hash.
func partitionedCities(t testing.TB, n int) []string {
	t.Helper()
	cities := make([]string, n)
	found := 0
	for i := 0; found < n && i < 100_000; i++ {
		name := fmt.Sprintf("city-%03d", i)
		p := PartitionFor(name, n)
		if cities[p] == "" {
			cities[p] = name
			found++
		}
	}
	if found < n {
		t.Fatalf("could not find %d cities covering all partitions", n)
	}
	return cities
}

// routedDeployment builds the routing fixture: 4 servers, 2 replicas per
// segment, a declared partition function on "city" with 4 partitions, and
// rowsPerCity rows per city sealed into several segments per partition.
func routedDeployment(t testing.TB, rowsPerCity int) (*Deployment, []*Server, []string) {
	t.Helper()
	cities := partitionedCities(t, 4)
	servers := make([]*Server, 4)
	for i := range servers {
		servers[i] = NewServer(fmt.Sprintf("server-%d", i))
	}
	d, err := NewDeployment(DeploymentConfig{
		Table: TableConfig{
			Name:            "orders",
			Schema:          ordersSchema(),
			SegmentRows:     rowsPerCity / 3, // several sealed segments per partition
			Replicas:        2,
			PartitionColumn: "city",
			Partitions:      4,
		},
		Servers:      servers,
		SegmentStore: objstore.NewMemStore(),
		Backup:       BackupP2P,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rowsPerCity; i++ {
		for p, city := range cities {
			r := record.Record{
				"order_id": fmt.Sprintf("o-%s-%05d", city, i),
				"city":     city,
				"status":   []string{"placed", "cooking", "delivered"}[i%3],
				"amount":   float64(i % 40),
				"items":    int64(i%5 + 1),
				"ts":       int64(1700000000000 + i*1000),
			}
			if err := d.Ingest(p, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	for p := 0; p < 4; p++ {
		if err := d.Seal(p); err != nil {
			t.Fatal(err)
		}
	}
	d.WaitUploads()
	return d, servers, cities
}

func countQueryFor(city string) *Query {
	q := &Query{Aggs: []AggSpec{{Kind: AggCount}, {Kind: AggSum, Column: "amount"}}}
	if city != "" {
		q.Filters = []Filter{{Column: "city", Op: OpEq, Value: city}}
	}
	return q
}

func TestIngestEnforcesDeclaredPartitionFunction(t *testing.T) {
	d, _, cities := routedDeployment(t, 30)
	wrong := (PartitionFor(cities[0], 4) + 1) % 4
	err := d.Ingest(wrong, record.Record{
		"order_id": "bad", "city": cities[0], "amount": 1.0, "ts": int64(1700000000000),
	})
	if err == nil {
		t.Fatal("ingest on the wrong partition should fail for a declared partition column")
	}
}

func TestPartitionForNumericCanonicalization(t *testing.T) {
	if PartitionFor(int64(3), 8) != PartitionFor(float64(3), 8) {
		t.Error("int64(3) and float64(3) must hash to the same partition")
	}
	if PartitionFor("3", 8) == PartitionFor(int64(3), 8) {
		// Strings and numbers live in different hash domains; equality here
		// would be coincidence, not a requirement — just document the
		// domains differ by construction ("s:" vs "n:" prefixes).
		t.Log("string and numeric 3 happened to collide (allowed)")
	}
}

func TestRoundRobinRouterMatchesExpectedTotals(t *testing.T) {
	d, _, _ := routedDeployment(t, 60)
	b := NewBroker(d)
	resp, err := b.Execute(context.Background(), &QueryRequest{Query: countQueryFor("")})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Rows[0][0].(int64); got != 240 {
		t.Errorf("count = %d, want 240", got)
	}
	if resp.Route.Router != "round-robin" {
		t.Errorf("router = %q", resp.Route.Router)
	}
	if resp.Stats.ServersContacted == 0 || resp.Stats.ServersContacted > 4 {
		t.Errorf("ServersContacted = %d", resp.Stats.ServersContacted)
	}
}

func TestReplicaGroupRouterBoundsFanOut(t *testing.T) {
	d, _, _ := routedDeployment(t, 60)
	baseline, err := NewBroker(d).Query(countQueryFor(""))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBrokerWithOptions(d, BrokerOptions{Router: &ReplicaGroupRouter{}})
	for i := 0; i < 4; i++ { // both preferred groups get exercised
		resp, err := b.Execute(context.Background(), &QueryRequest{Query: countQueryFor("")})
		if err != nil {
			t.Fatal(err)
		}
		// 4 servers / 2 replica groups: one group = 2 servers.
		if resp.Stats.ServersContacted > 2 {
			t.Errorf("replica-group fan-out = %d servers, want <= 2", resp.Stats.ServersContacted)
		}
		if resp.Route.ReplicaGroup < 0 || resp.Route.ReplicaGroup > 1 {
			t.Errorf("replica group = %d", resp.Route.ReplicaGroup)
		}
		if !reflect.DeepEqual(resp.Rows, baseline.Rows) {
			t.Errorf("replica-group rows %v != baseline %v", resp.Rows, baseline.Rows)
		}
	}
}

func TestReplicaGroupRouterFailsOverToOtherReplicaSet(t *testing.T) {
	d, servers, _ := routedDeployment(t, 60)
	baseline, err := NewBroker(d).Query(countQueryFor(""))
	if err != nil {
		t.Fatal(err)
	}
	// Kill replica group 0 entirely (servers 0 and 2): every preferred-group
	// pick must fail over to the other replica set.
	servers[0].SetDown(true)
	servers[2].SetDown(true)
	b := NewBrokerWithOptions(d, BrokerOptions{Router: &ReplicaGroupRouter{}})
	for i := 0; i < 4; i++ {
		resp, err := b.Execute(context.Background(), &QueryRequest{Query: countQueryFor("")})
		if err != nil {
			t.Fatalf("query %d with group 0 down: %v", i, err)
		}
		if !reflect.DeepEqual(resp.Rows, baseline.Rows) {
			t.Errorf("failover rows %v != baseline %v", resp.Rows, baseline.Rows)
		}
		if resp.Stats.ServersContacted > 2 {
			t.Errorf("contacted %d servers with half the cluster down", resp.Stats.ServersContacted)
		}
	}
}

func TestPartitionRouterPrunesServers(t *testing.T) {
	d, _, cities := routedDeployment(t, 60)
	q := countQueryFor(cities[2])
	baseline, err := NewBroker(d).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBrokerWithOptions(d, BrokerOptions{Router: &PartitionRouter{}})
	resp, err := b.Execute(context.Background(), &QueryRequest{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Rows, baseline.Rows) {
		t.Errorf("partition-routed rows %v != baseline %v", resp.Rows, baseline.Rows)
	}
	if resp.Stats.ServersContacted != 1 {
		t.Errorf("ServersContacted = %d, want 1 (only the partition's owner)", resp.Stats.ServersContacted)
	}
	if resp.Stats.PartitionsPruned != 3 {
		t.Errorf("PartitionsPruned = %d, want 3", resp.Stats.PartitionsPruned)
	}
	if got := resp.Rows[0][0].(int64); got != 60 {
		t.Errorf("count = %d, want 60", got)
	}

	// Without a partition filter the router scans everything and prunes
	// nothing.
	all, err := b.Execute(context.Background(), &QueryRequest{Query: countQueryFor("")})
	if err != nil {
		t.Fatal(err)
	}
	if all.Stats.PartitionsPruned != 0 {
		t.Errorf("unfiltered PartitionsPruned = %d, want 0", all.Stats.PartitionsPruned)
	}
	if got := all.Rows[0][0].(int64); got != 240 {
		t.Errorf("unfiltered count = %d, want 240", got)
	}
}

func TestPartitionRouterInFilterPrunes(t *testing.T) {
	d, _, cities := routedDeployment(t, 30)
	b := NewBrokerWithOptions(d, BrokerOptions{Router: &PartitionRouter{}})
	q := &Query{
		Filters: []Filter{{Column: "city", Op: OpIn, Values: []any{cities[0], cities[3]}}},
		Aggs:    []AggSpec{{Kind: AggCount}},
	}
	resp, err := b.Execute(context.Background(), &QueryRequest{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Rows[0][0].(int64); got != 60 {
		t.Errorf("count = %d, want 60", got)
	}
	if resp.Stats.PartitionsPruned != 2 {
		t.Errorf("PartitionsPruned = %d, want 2", resp.Stats.PartitionsPruned)
	}
	if resp.Stats.ServersContacted > 2 {
		t.Errorf("ServersContacted = %d, want <= 2", resp.Stats.ServersContacted)
	}
}

func TestPartitionRouterNeverPrunesOnlyLiveReplica(t *testing.T) {
	d, servers, cities := routedDeployment(t, 60)
	q := countQueryFor(cities[1])
	baseline, err := NewBroker(d).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	owner := PartitionFor(cities[1], 4) % len(servers)
	servers[owner].SetDown(true)
	b := NewBrokerWithOptions(d, BrokerOptions{Router: &PartitionRouter{}})
	resp, err := b.Execute(context.Background(), &QueryRequest{Query: q})
	if err != nil {
		t.Fatalf("partition router must fail over when the owner is down: %v", err)
	}
	if !reflect.DeepEqual(resp.Rows, baseline.Rows) {
		t.Errorf("failover rows %v != baseline %v", resp.Rows, baseline.Rows)
	}
	// Both replicas down: the segment really is unavailable — that must
	// surface as an error, not silent pruning.
	servers[(owner+1)%len(servers)].SetDown(true)
	if _, err := b.Execute(context.Background(), &QueryRequest{Query: q}); err == nil {
		t.Error("query with every replica down should fail")
	}
}

// TestRoutingUnderSetDownFlaps hammers all three routers while one server
// flaps up and down. Every segment keeps a live replica throughout (only
// one of two replicas flaps), so queries that fail may only fail with
// ErrServerDown from the routing race — never ErrSegmentUnavailable (that
// would mean a router pruned or lost track of the only live copy) — and
// every successful query must return exact results. Run with -race.
func TestRoutingUnderSetDownFlaps(t *testing.T) {
	d, servers, cities := routedDeployment(t, 45)
	want, err := NewBroker(d).Query(countQueryFor(cities[0]))
	if err != nil {
		t.Fatal(err)
	}
	routers := []Router{&RoundRobinRouter{}, &ReplicaGroupRouter{}, &PartitionRouter{}}
	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		down := false
		for {
			select {
			case <-stop:
				servers[1].SetDown(false)
				return
			default:
				down = !down
				servers[1].SetDown(down)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	succeeded := 0
	for _, r := range routers {
		wg.Add(1)
		go func(r Router) {
			defer wg.Done()
			b := NewBrokerWithOptions(d, BrokerOptions{Router: r})
			for i := 0; i < 60; i++ {
				resp, err := b.Execute(context.Background(), &QueryRequest{Query: countQueryFor(cities[0])})
				if err != nil {
					if errors.Is(err, ErrSegmentUnavailable) {
						t.Errorf("%s: lost the only live replica: %v", r.Name(), err)
					} else if !errors.Is(err, ErrServerDown) {
						t.Errorf("%s: unexpected error: %v", r.Name(), err)
					}
					continue
				}
				if !reflect.DeepEqual(resp.Rows, want.Rows) {
					t.Errorf("%s: rows %v != want %v", r.Name(), resp.Rows, want.Rows)
				}
				mu.Lock()
				succeeded++
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	flapper.Wait()
	if succeeded == 0 {
		t.Error("no query succeeded during the flap storm")
	}
}

func TestMaxSegmentsBudget(t *testing.T) {
	d, _, _ := routedDeployment(t, 60)
	b := NewBroker(d)
	_, err := b.Execute(context.Background(), &QueryRequest{Query: countQueryFor(""), MaxSegments: 1})
	if !errors.Is(err, ErrTooManySegments) {
		t.Fatalf("err = %v, want ErrTooManySegments", err)
	}
	// A pruned query that fits the budget passes.
	d2, _, cities := routedDeployment(t, 30)
	b2 := NewBrokerWithOptions(d2, BrokerOptions{Router: &PartitionRouter{}})
	resp, err := b2.Execute(context.Background(), &QueryRequest{Query: countQueryFor(cities[0]), MaxSegments: 6})
	if err != nil {
		t.Fatalf("pruned query within budget: %v", err)
	}
	if got := resp.Rows[0][0].(int64); got != 30 {
		t.Errorf("count = %d, want 30", got)
	}
}

func TestConsistencyHotSkipsOffloadedSegments(t *testing.T) {
	d, _, _ := routedDeployment(t, 60)
	infos := d.SegmentInfos()
	if len(infos) < 2 {
		t.Fatalf("fixture too small: %d segments", len(infos))
	}
	if _, err := d.OffloadSegment(infos[0].Name); err != nil {
		t.Fatal(err)
	}
	b := NewBroker(d)
	// No loader attached: a full-consistency query over the offloaded
	// segment fails...
	if _, err := b.Execute(context.Background(), &QueryRequest{Query: countQueryFor("")}); !errors.Is(err, ErrSegmentUnavailable) {
		t.Fatalf("full consistency without loader: err = %v, want ErrSegmentUnavailable", err)
	}
	// ...while hot-only answers from the resident set and reports the skip.
	resp, err := b.Execute(context.Background(), &QueryRequest{Query: countQueryFor(""), Consistency: ConsistencyHot})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.SegmentsSkipped == 0 {
		t.Error("hot-only query should report skipped segments")
	}
	if got := resp.Rows[0][0].(int64); got >= 240 || got <= 0 {
		t.Errorf("hot-only count = %d, want in (0, 240)", got)
	}
	// With the loader attached, full consistency reloads and is exact again.
	d.AttachLoaders()
	full, err := b.Execute(context.Background(), &QueryRequest{Query: countQueryFor("")})
	if err != nil {
		t.Fatal(err)
	}
	if got := full.Rows[0][0].(int64); got != 240 {
		t.Errorf("reloaded count = %d, want 240", got)
	}
}

func TestRequestTimeWindowOverride(t *testing.T) {
	d, _, _ := routedDeployment(t, 60)
	b := NewBroker(d)
	resp, err := b.Execute(context.Background(), &QueryRequest{
		Query: countQueryFor(""),
		Time:  &TimeRange{From: 1700000000000, To: 1700000009000}, // first 10 ts values
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Rows[0][0].(int64); got != 40 { // 10 per city x 4 cities
		t.Errorf("windowed count = %d, want 40", got)
	}
	if resp.Stats.SegmentsPruned == 0 {
		t.Error("time window should prune out-of-window segments")
	}
}
