package fedsql

import (
	"fmt"
	"testing"

	"repro/internal/metadata"
	"repro/internal/objstore"
	"repro/internal/olap"
	"repro/internal/record"
)

func ordersSchema() *metadata.Schema {
	return &metadata.Schema{
		Name:    "orders",
		Version: 1,
		Fields: []metadata.Field{
			{Name: "order_id", Type: metadata.TypeString},
			{Name: "city", Type: metadata.TypeString, Dimension: true},
			{Name: "amount", Type: metadata.TypeDouble},
			{Name: "ts", Type: metadata.TypeTimestamp},
		},
		TimeField: "ts",
	}
}

func citiesSchema() *metadata.Schema {
	return &metadata.Schema{
		Name:    "cities",
		Version: 1,
		Fields: []metadata.Field{
			{Name: "city", Type: metadata.TypeString, Dimension: true},
			{Name: "region", Type: metadata.TypeString, Dimension: true},
		},
	}
}

func orderRows(n int) []record.Record {
	cities := []string{"sf", "nyc", "la"}
	rows := make([]record.Record, n)
	for i := range rows {
		rows[i] = record.Record{
			"order_id": fmt.Sprintf("o%04d", i),
			"city":     cities[i%3],
			"amount":   float64(i % 10),
			"ts":       int64(1700000000000 + i*1000),
		}
	}
	return rows
}

// setupEngine builds: pinot.orders (OLAP deployment), hive.orders (archive),
// hive.cities (dimension table).
func setupEngine(t *testing.T, n int) (*Engine, *PinotConnector) {
	t.Helper()
	// Pinot table.
	servers := []*olap.Server{olap.NewServer("s0"), olap.NewServer("s1")}
	d, err := olap.NewDeployment(olap.DeploymentConfig{
		Table: olap.TableConfig{
			Name:        "orders",
			Schema:      ordersSchema(),
			SegmentRows: 50,
		},
		Servers:      servers,
		SegmentStore: objstore.NewMemStore(),
		Backup:       olap.BackupP2P,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range orderRows(n) {
		if err := d.Ingest(i%2, r); err != nil {
			t.Fatal(err)
		}
	}
	pinot := NewPinotConnector("pinot")
	pinot.AddTable(d)

	// Archive tables.
	store := objstore.NewMemStore()
	codec, _ := record.NewCodec(ordersSchema())
	w := objstore.NewRawLogWriter(store, "orders", codec)
	w.Append(orderRows(n))
	objstore.NewCompactor(store, "orders", codec).Compact()

	cityCodec, _ := record.NewCodec(citiesSchema())
	cw := objstore.NewRawLogWriter(store, "cities", cityCodec)
	cw.Append([]record.Record{
		{"city": "sf", "region": "west"},
		{"city": "la", "region": "west"},
		{"city": "nyc", "region": "east"},
	})
	objstore.NewCompactor(store, "cities", cityCodec).Compact()

	hive := NewArchiveConnector("hive", store)
	hive.AddTable("orders", ordersSchema())
	hive.AddTable("cities", citiesSchema())

	e := NewEngine()
	e.Register(pinot)
	e.Register(hive)
	return e, pinot
}

func TestSimpleSelectWithPushdown(t *testing.T) {
	e, _ := setupEngine(t, 90)
	res, err := e.Query("SELECT order_id, amount FROM pinot.orders WHERE city = 'sf' AND amount > 5 LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	if !res.Stats.PushedFilters {
		t.Error("filters should have been pushed to pinot")
	}
	for _, row := range res.Rows {
		if row[1].(float64) <= 5 {
			t.Fatalf("filter violated: %v", row)
		}
	}
}

func TestAggregationPushdownMatchesEngineSide(t *testing.T) {
	e, pinot := setupEngine(t, 300)
	sql := "SELECT city, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS mean FROM pinot.orders GROUP BY city ORDER BY city"

	pushed, err := e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !pushed.Stats.PushedAggs {
		t.Error("aggregation should have been pushed down")
	}

	pinot.DisablePushdown = true
	unpushed, err := e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	pinot.DisablePushdown = false
	if unpushed.Stats.PushedAggs {
		t.Error("pushdown disabled but stats claim pushed aggs")
	}
	// Same answer either way.
	if len(pushed.Rows) != len(unpushed.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(pushed.Rows), len(unpushed.Rows))
	}
	for i := range pushed.Rows {
		for c := range pushed.Rows[i] {
			a := fmt.Sprintf("%v", pushed.Rows[i][c])
			b := fmt.Sprintf("%v", unpushed.Rows[i][c])
			if a != b {
				t.Errorf("row %d col %d: pushed %s vs engine %s", i, c, a, b)
			}
		}
	}
	// The pushed version moves far fewer rows across the connector.
	if pushed.Stats.RowsReturned >= unpushed.Stats.RowsReturned {
		t.Errorf("pushdown returned %d rows, engine-side %d — pushdown should move less",
			pushed.Stats.RowsReturned, unpushed.Stats.RowsReturned)
	}
}

func TestArchiveScanEngineSideAggregation(t *testing.T) {
	e, _ := setupEngine(t, 120)
	res, err := e.Query("SELECT city, COUNT(*) AS n FROM hive.orders WHERE amount >= 0 GROUP BY city ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PushedAggs || res.Stats.PushedFilters {
		t.Error("archive connector advertises no pushdown")
	}
	var total int64
	for _, row := range res.Rows {
		total += row[1].(int64)
	}
	if total != 120 {
		t.Errorf("total = %d", total)
	}
}

func TestFederatedJoinPinotWithHiveDimension(t *testing.T) {
	// The §4.3.2 headline: join fresh Pinot data with a Hive dimension
	// table inside the engine.
	e, _ := setupEngine(t, 90)
	res, err := e.Query(`
		SELECT c.region, SUM(o.amount) AS revenue
		FROM pinot.orders o JOIN hive.cities c ON o.city = c.city
		GROUP BY c.region ORDER BY c.region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("regions = %v", res.Rows)
	}
	// east = nyc; west = sf + la.
	var east, west float64
	for _, r := range orderRows(90) {
		if r.String("city") == "nyc" {
			east += r.Double("amount")
		} else {
			west += r.Double("amount")
		}
	}
	if res.Rows[0][0] != "east" || res.Rows[0][1].(float64) != east {
		t.Errorf("east row = %v, want %v", res.Rows[0], east)
	}
	if res.Rows[1][0] != "west" || res.Rows[1][1].(float64) != west {
		t.Errorf("west row = %v, want %v", res.Rows[1], west)
	}
}

func TestJoinWithSidePredicates(t *testing.T) {
	e, _ := setupEngine(t, 90)
	res, err := e.Query(`
		SELECT o.order_id, c.region
		FROM pinot.orders o JOIN hive.cities c ON o.city = c.city
		WHERE o.city = 'sf' AND c.region = 'west'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 30 {
		t.Fatalf("rows = %d, want 30 sf orders", len(res.Rows))
	}
}

func TestSubqueryInFrom(t *testing.T) {
	e, _ := setupEngine(t, 90)
	res, err := e.Query(`
		SELECT city FROM (
			SELECT city, COUNT(*) AS n FROM pinot.orders GROUP BY city
		) t WHERE n >= 30 ORDER BY city`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "la" || res.Rows[2][0] != "sf" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	e, _ := setupEngine(t, 10)
	res, err := e.Query("SELECT * FROM hive.cities ORDER BY city")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || len(res.Columns) != 2 {
		t.Fatalf("result = %v %v", res.Columns, res.Rows)
	}
}

func TestDefaultCatalog(t *testing.T) {
	e, _ := setupEngine(t, 30)
	// pinot registered first → default.
	res, err := e.Query("SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 30 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if err := e.SetDefaultCatalog("hive"); err != nil {
		t.Fatal(err)
	}
	if err := e.SetDefaultCatalog("nope"); err == nil {
		t.Error("unknown default catalog should fail")
	}
	if got := e.Catalogs(); len(got) != 2 || got[0] != "hive" {
		t.Errorf("catalogs = %v", got)
	}
}

func TestQueryErrors(t *testing.T) {
	e, _ := setupEngine(t, 10)
	bad := []string{
		"SELECT x FROM ghost.t",     // unknown catalog
		"SELECT x FROM pinot.ghost", // unknown table
		"not sql",                   // parse error
		"SELECT COUNT(*) FROM orders GROUP BY TUMBLE(ts, 1000)", // window in fedsql
	}
	for _, sql := range bad {
		if _, err := e.Query(sql); err == nil {
			t.Errorf("Query(%q) should fail", sql)
		}
	}
}

func TestConnectorMetadata(t *testing.T) {
	e, pinot := setupEngine(t, 10)
	_ = e
	if got := pinot.Tables(); len(got) != 1 || got[0] != "orders" {
		t.Errorf("tables = %v", got)
	}
	s, err := pinot.Schema("orders")
	if err != nil || s.Name != "orders" {
		t.Errorf("schema = %v, %v", s, err)
	}
	if _, err := pinot.Schema("nope"); err == nil {
		t.Error("missing schema should error")
	}
}
