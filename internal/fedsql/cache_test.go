package fedsql

import (
	"strings"
	"testing"

	"repro/internal/objstore"
	"repro/internal/olap"
)

// TestPlanLineShowsCacheDecisions: a connector with a broker result cache
// reports cache=miss then cache=hit in the EXPLAIN plan line, with
// identical rows both times, and a post-ingest query goes back to miss.
func TestPlanLineShowsCacheDecisions(t *testing.T) {
	servers := []*olap.Server{olap.NewServer("s0"), olap.NewServer("s1")}
	d, err := olap.NewDeployment(olap.DeploymentConfig{
		Table:        olap.TableConfig{Name: "orders", Schema: ordersSchema(), SegmentRows: 50},
		Servers:      servers,
		SegmentStore: objstore.NewMemStore(),
		Backup:       olap.BackupP2P,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := orderRows(200)
	for i, r := range rows {
		if err := d.Ingest(i%2, r); err != nil {
			t.Fatal(err)
		}
	}
	pinot := NewPinotConnector("pinot")
	pinot.CacheMaxBytes = 1 << 20
	pinot.AddTable(d)
	e := NewEngine()
	e.Register(pinot)

	const sql = "SELECT city, SUM(amount) AS revenue FROM pinot.orders GROUP BY city"
	first, err := e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Plan) != 1 || !strings.Contains(first.Plan[0], "cache=miss") {
		t.Fatalf("first plan %v should show cache=miss", first.Plan)
	}
	second, err := e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.Plan[0], "cache=hit") {
		t.Fatalf("second plan %v should show cache=hit", second.Plan)
	}
	if second.Stats.Exec.CacheHit != 1 || second.Stats.Exec.CacheMemBytes <= 0 {
		t.Fatalf("hit stats %+v", second.Stats.Exec)
	}
	if rowsKey(first) != rowsKey(second) {
		t.Fatal("cached result differs from executed result")
	}

	if err := d.Ingest(0, rows[0]); err != nil {
		t.Fatal(err)
	}
	third, err := e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(third.Plan[0], "cache=miss") {
		t.Fatalf("post-ingest plan %v should show cache=miss", third.Plan)
	}
}
