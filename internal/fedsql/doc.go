// Package fedsql implements the interactive, federated SQL layer of the
// stack — the Presto stand-in (§4.5): a query engine that executes full SQL
// (joins, subqueries) across heterogeneous backends through a Connector API,
// pushing as much of the plan as possible down to each backend.
//
// The Connector API v2 splits the scan surface: Scan pulls (projected,
// filtered, ordered, limited) rows, and AggregateScan pushes a whole
// aggregate query into the backend so only per-group aggregate rows cross
// the connector boundary. Capabilities are declared explicitly per
// fragment; an aggregate a connector cannot absorb falls back to row scan
// plus engine-side hash aggregation, counted in
// QueryStats.PushdownFallbacks (and logged via Engine.Logf when set).
//
// The Pinot connector pushes predicates, projections, aggregations and
// limits into the OLAP layer (§4.3.2, E11/E18) — with a pluggable routing
// strategy (PinotConnector.Router) so partition-filtered federated queries
// skip servers entirely — which is what makes sub-second federated queries
// on fresh data possible; the archive connector reads the long-term store
// and relies on engine-side processing, like Presto-over-Hive.
// Result.Stats unifies connector-side and backend execution counters, and
// Result.Plan records one pushdown/routing line per table scan (the
// payload of sqlshell's EXPLAIN).
//
// Concurrency and cancellation thread end-to-end: Engine.QueryCtx passes
// its context through every Connector.Scan into the OLAP broker's parallel
// scatter-gather, join sides execute concurrently, and a cancelled or
// timed-out federated query stops segment scans inside the backend.
package fedsql
