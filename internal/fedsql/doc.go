// Package fedsql implements the interactive, federated SQL layer of the
// stack — the Presto stand-in (§4.5): a query engine that executes full SQL
// (joins, subqueries) across heterogeneous backends through a Connector API,
// pushing as much of the plan as possible down to each backend.
//
// The Pinot connector pushes predicates, projections, aggregations and
// limits into the OLAP layer (§4.3.2, E11), which is what makes sub-second
// federated queries on fresh data possible; the archive connector reads the
// long-term store and relies on engine-side processing, like
// Presto-over-Hive.
//
// Concurrency and cancellation thread end-to-end: Engine.QueryCtx passes
// its context through every Connector.Scan into the OLAP broker's parallel
// scatter-gather, join sides execute concurrently, and a cancelled or
// timed-out federated query stops segment scans inside the backend.
package fedsql
