package fedsql

// Randomized differential harness for the streaming execution path: every
// query shape runs once through the Connector v3 batch-iterator surface and
// once through the legacy materialized surface (the same connector with its
// streaming methods hidden), and the results must be byte-identical after
// canonical serialization. Unordered results are compared as sorted
// multisets — the row set is deterministic, the arrival order across
// concurrent segment producers is not; ORDER BY results compare in exact
// order. Amounts are quarter-valued so float aggregation is exact and
// order-independent.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/objstore"
	"repro/internal/olap"
	"repro/internal/record"
)

func diffSchema() *metadata.Schema {
	return &metadata.Schema{
		Name:    "events",
		Version: 1,
		Fields: []metadata.Field{
			{Name: "id", Type: metadata.TypeString},
			{Name: "city", Type: metadata.TypeString, Dimension: true},
			{Name: "status", Type: metadata.TypeString, Dimension: true, Nullable: true},
			{Name: "amount", Type: metadata.TypeDouble},
			{Name: "qty", Type: metadata.TypeLong},
			{Name: "rush", Type: metadata.TypeBool, Nullable: true},
			{Name: "ts", Type: metadata.TypeTimestamp},
		},
		TimeField: "ts",
	}
}

var diffCities = []string{"sf", "nyc", "la", "chi"}

// diffRows generates n random rows. Nullable columns are NULL with real
// probability, but row 0 carries every column so each column has at least
// one non-NULL value — the condition under which the streaming star
// projection (sorted schema columns) matches the legacy star projection
// (sorted union of record keys).
func diffRows(rng *rand.Rand, n int) []record.Record {
	rows := make([]record.Record, n)
	for i := range rows {
		r := record.Record{
			"id":     fmt.Sprintf("e%05d", i),
			"city":   diffCities[rng.Intn(len(diffCities))],
			"amount": float64(rng.Intn(400)) / 4, // exact quarters: order-independent sums
			"qty":    int64(rng.Intn(20)),
			"ts":     int64(1700000000000 + i*1000),
		}
		if i == 0 || rng.Float64() > 0.3 {
			r["status"] = []string{"ok", "late", "lost"}[rng.Intn(3)]
		}
		if i == 0 || rng.Float64() > 0.4 {
			r["rush"] = rng.Intn(2) == 0
		}
		rows[i] = r
	}
	return rows
}

// v2Conn hides a connector's streaming surface: the engine's openScan
// type-assertion fails and every scan goes through the materialized
// adapter. This is the differential baseline.
type v2Conn struct{ Connector }

// buildDiffEngines returns the same data behind two engines: one on the
// full v3 surface, one forced through the materialized path.
func buildDiffEngines(t *testing.T, rng *rand.Rand, n int, disablePushdown bool) (streaming, materialized *Engine, servers []*olap.Server) {
	t.Helper()
	servers = []*olap.Server{olap.NewServer("s0"), olap.NewServer("s1")}
	d, err := olap.NewDeployment(olap.DeploymentConfig{
		Table: olap.TableConfig{
			Name:        "events",
			Schema:      diffSchema(),
			SegmentRows: 64,
		},
		Servers:      servers,
		SegmentStore: objstore.NewMemStore(),
		Backup:       olap.BackupP2P,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range diffRows(rng, n) {
		if err := d.Ingest(i%2, r); err != nil {
			t.Fatal(err)
		}
	}
	pinot := NewPinotConnector("pinot")
	pinot.DisablePushdown = disablePushdown
	pinot.AddTable(d)

	store := objstore.NewMemStore()
	codec, _ := record.NewCodec(citiesSchema())
	w := objstore.NewRawLogWriter(store, "cities", codec)
	w.Append([]record.Record{
		{"city": "sf", "region": "west"},
		{"city": "la", "region": "west"},
		{"city": "nyc", "region": "east"},
		{"city": "chi", "region": "central"},
	})
	objstore.NewCompactor(store, "cities", codec).Compact()
	hive := NewArchiveConnector("hive", store)
	hive.AddTable("cities", citiesSchema())

	streaming = NewEngine()
	streaming.Register(pinot)
	streaming.Register(hive)
	materialized = NewEngine()
	materialized.Register(&v2Conn{Connector: pinot})
	materialized.Register(hive)
	return streaming, materialized, servers
}

// serializeRows renders every row to a canonical byte form.
func serializeRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		out[i] = fmt.Sprintf("%#v", row)
	}
	return out
}

// diffQuery runs sql through both engines and fails on any divergence.
func diffQuery(t *testing.T, streaming, materialized *Engine, sql string, ordered, wantStreamed bool) {
	t.Helper()
	sRes, err := streaming.Query(sql)
	if err != nil {
		t.Fatalf("streaming %q: %v", sql, err)
	}
	mRes, err := materialized.Query(sql)
	if err != nil {
		t.Fatalf("materialized %q: %v", sql, err)
	}
	if fmt.Sprintf("%q", sRes.Columns) != fmt.Sprintf("%q", mRes.Columns) {
		t.Fatalf("%q: columns diverge\nstreaming    %q\nmaterialized %q", sql, sRes.Columns, mRes.Columns)
	}
	sRows, mRows := serializeRows(sRes), serializeRows(mRes)
	if !ordered {
		sort.Strings(sRows)
		sort.Strings(mRows)
	}
	if len(sRows) != len(mRows) {
		t.Fatalf("%q: row count diverges: streaming %d, materialized %d", sql, len(sRows), len(mRows))
	}
	for i := range sRows {
		if sRows[i] != mRows[i] {
			t.Fatalf("%q: row %d diverges\nstreaming    %s\nmaterialized %s", sql, i, sRows[i], mRows[i])
		}
	}
	if wantStreamed {
		if !sRes.Stats.Streamed || sRes.Stats.BatchesStreamed == 0 {
			t.Fatalf("%q: streaming engine did not stream (streamed=%v batches=%d)",
				sql, sRes.Stats.Streamed, sRes.Stats.BatchesStreamed)
		}
	}
	if mRes.Stats.Streamed {
		t.Fatalf("%q: materialized baseline reports Streamed", sql)
	}
}

func TestStreamDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dp := range []bool{false, true} {
		name := "pushdown"
		if dp {
			name = "scan-only"
		}
		t.Run(name, func(t *testing.T) {
			streaming, materialized, _ := buildDiffEngines(t, rng, 600, dp)
			for trial := 0; trial < 4; trial++ {
				x := float64(rng.Intn(400)) / 4
				city := diffCities[rng.Intn(len(diffCities))]
				k := 5 + rng.Intn(40)
				// Selections stream on the v3 path in both modes; aggregates
				// stream only when pushdown is off (scan + engine-side agg).
				shapes := []struct {
					sql          string
					ordered      bool
					wantStreamed bool
				}{
					{fmt.Sprintf("SELECT * FROM pinot.events WHERE amount > %v", x), false, true},
					{fmt.Sprintf("SELECT id, city, amount FROM pinot.events WHERE city = '%s' AND amount <= %v", city, x), false, true},
					{"SELECT id, status FROM pinot.events WHERE rush = true", false, true},
					{fmt.Sprintf("SELECT id, amount FROM pinot.events ORDER BY id LIMIT %d", k), true, false},
					{"SELECT city, COUNT(*) AS n, SUM(amount) AS total FROM pinot.events GROUP BY city ORDER BY city", true, dp},
					{fmt.Sprintf("SELECT COUNT(*) AS n, AVG(amount) AS mean FROM pinot.events WHERE amount >= %v", x), false, dp},
					{fmt.Sprintf("SELECT o.id, o.city, c.region FROM pinot.events o JOIN hive.cities c ON o.city = c.city WHERE o.amount > %v", x), false, true},
				}
				for _, s := range shapes {
					diffQuery(t, streaming, materialized, s.sql, s.ordered, s.wantStreamed)
				}
			}
			// Unordered LIMIT picks an arbitrary subset per arrival order;
			// only the cardinality is comparable.
			sRes, err := streaming.Query("SELECT id FROM pinot.events LIMIT 17")
			if err != nil {
				t.Fatal(err)
			}
			mRes, err := materialized.Query("SELECT id FROM pinot.events LIMIT 17")
			if err != nil {
				t.Fatal(err)
			}
			if len(sRes.Rows) != 17 || len(mRes.Rows) != 17 {
				t.Fatalf("LIMIT rows: streaming %d, materialized %d, want 17", len(sRes.Rows), len(mRes.Rows))
			}
		})
	}
}

// TestStreamDiffCancelMidQuery cancels an engine query mid-stream: the
// error must surface (no silent truncation) and every producer goroutine
// must be reaped.
func TestStreamDiffCancelMidQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	streaming, _, servers := buildDiffEngines(t, rng, 2000, false)
	for _, s := range servers {
		s.SetScanDelay(2 * time.Millisecond)
		defer s.SetScanDelay(0)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 8*time.Millisecond)
		_, err := streaming.QueryCtx(ctx, "SELECT * FROM pinot.events")
		cancel()
		if err == nil {
			t.Fatal("mid-stream deadline produced a clean result: truncation went unreported")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("mid-stream error = %v, want context.DeadlineExceeded", err)
		}
	}
	waitGoroutines(t, before)
}

// TestOpenScanCloseMidStreamNoLeak abandons connector-level iterators after
// one batch; Close alone must reap the broker producers.
func TestOpenScanCloseMidStreamNoLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	streaming, _, _ := buildDiffEngines(t, rng, 2000, false)
	conn, ok := streaming.connectors["pinot"].(StreamingConnector)
	if !ok {
		t.Fatal("pinot connector is not streaming")
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		it, err := conn.OpenScan(context.Background(), "events", Pushdown{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := it.Next(context.Background()); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		st := it.Stats()
		if !st.Streamed {
			t.Fatal("open-scan iterator did not report Streamed")
		}
	}
	waitGoroutines(t, before)
}

// TestOpenScanContextCancelSticky cancels the pull context mid-stream: Next
// must converge to context.Canceled and stay there.
func TestOpenScanContextCancelSticky(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	streaming, _, _ := buildDiffEngines(t, rng, 2000, false)
	conn := streaming.connectors["pinot"].(StreamingConnector)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	it, err := conn.OpenScan(ctx, "events", Pushdown{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	for {
		_, err := it.Next(ctx)
		if err == nil {
			continue // batches in flight before the cancel may still arrive
		}
		if errors.Is(err, context.Canceled) {
			break
		}
		t.Fatalf("post-cancel Next = %v, want context.Canceled", err)
	}
	if _, err := it.Next(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("error is not sticky: %v", err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, before)
}

// waitGoroutines waits for the goroutine count to return to its baseline
// (within the runtime's background slack).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}
