package fedsql

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/metadata"
	"repro/internal/objstore"
	"repro/internal/olap"
	"repro/internal/olap/matview"
	"repro/internal/olap/qcache"
	"repro/internal/record"
	"repro/internal/sqlparse"
)

// ErrPushdownUnsupported is returned by AggregateScan when a connector
// cannot execute aggregate queries inside its backend. The engine falls
// back to Scan + engine-side aggregation and counts the fallback in
// QueryStats.PushdownFallbacks.
var ErrPushdownUnsupported = errors.New("fedsql: connector does not execute aggregates")

// Capabilities advertises, fragment by fragment, what a connector can
// absorb. Every field is explicit: a connector that supports nothing must
// still say so (see ArchiveConnector.Capabilities) rather than leaning on
// the zero value, so readers of the planner can see each decision gate.
type Capabilities struct {
	// Filters: WHERE predicates execute inside the backend.
	Filters bool
	// Aggregations: aggregate functions execute inside via AggregateScan.
	Aggregations bool
	// GroupBy: grouped aggregations execute inside (requires Aggregations).
	GroupBy bool
	// OrderBy: ORDER BY executes inside the backend.
	OrderBy bool
	// Limit: LIMIT executes inside the backend.
	Limit bool
}

// Pushdown is the row-scan fragment handed to a connector's Scan: a
// projection with filters and optional ordering/limit. Aggregations travel
// separately through AggregateScan. Fields the connector did not advertise
// are guaranteed empty.
type Pushdown struct {
	// Columns is the projection (empty = all columns).
	Columns []string
	// Filters are WHERE conjuncts on this table.
	Filters []sqlparse.Predicate
	// OrderBy/Limit apply inside the backend.
	OrderBy []sqlparse.OrderItem
	Limit   int
}

// AggregateQuery is a whole aggregate query for connector-side execution:
// the fragment AggregateScan pushes into the backend so only (partial)
// aggregate states cross the connector boundary, never raw rows.
type AggregateQuery struct {
	Filters []sqlparse.Predicate
	GroupBy []string
	Aggs    []sqlparse.SelectItem
	OrderBy []sqlparse.OrderItem
	Limit   int
}

// QueryStats unifies the old connector ScanStats and the OLAP layer's
// ExecStats into the one stats block a federated query reports: what
// crossed the connector boundary, which fragments executed inside the
// backend, and what the backend's execution and routing looked like.
type QueryStats struct {
	// RowsReturned is what crossed the connector boundary into the engine.
	RowsReturned int64
	// Pushed* indicate the fragment actually executed inside the backend.
	PushedFilters bool
	PushedAggs    bool
	PushedLimit   bool
	// PushdownFallbacks counts aggregate queries that fell back to row
	// scan + engine-side aggregation because the connector lacked the
	// capability (or its AggregateScan refused).
	PushdownFallbacks int64
	// TrimK is the per-server top-K budget the backend applied to an
	// ORDER BY/LIMIT query (groups for aggregations, rows for selections);
	// 0 when the backend ran exact/untrimmed.
	TrimK int
	// Router names the backend routing strategy ("" when the backend has
	// none, e.g. the archive).
	Router string
	// Streamed marks that the row-scan fragment crossed the connector
	// boundary as a pull-based batch stream (Connector v3 OpenScan) instead
	// of one materialized slice — EXPLAIN's exec=streaming vs
	// exec=materialized.
	Streamed bool
	// BatchesStreamed counts the batches that crossed the boundary (both
	// true streams and materialized adapters chunk into batches).
	BatchesStreamed int64
	// PeakEngineBytes estimates the largest engine-resident row footprint
	// the query needed at any one moment: the whole scan result for
	// materialized paths, one in-flight batch for streaming paths.
	PeakEngineBytes int64
	// Exec carries the backend's execution counters (segment scans, time
	// pruning, server fan-out, partition pruning) when the backend is the
	// OLAP layer; zero otherwise.
	Exec olap.ExecStats
}

// Merge folds another scan's stats into this one (joins, subqueries):
// counters add, pushed flags OR (did *any* scan push), and the first
// non-empty router name wins.
func (s *QueryStats) Merge(o QueryStats) {
	s.RowsReturned += o.RowsReturned
	s.PushedFilters = s.PushedFilters || o.PushedFilters
	s.PushedAggs = s.PushedAggs || o.PushedAggs
	s.PushedLimit = s.PushedLimit || o.PushedLimit
	s.PushdownFallbacks += o.PushdownFallbacks
	if s.TrimK == 0 {
		s.TrimK = o.TrimK
	}
	if s.Router == "" {
		s.Router = o.Router
	}
	s.Streamed = s.Streamed || o.Streamed
	s.BatchesStreamed += o.BatchesStreamed
	// Scans of a join overlap, so the peaks could add; keeping the max is
	// the conservative (never over-claiming) report.
	if o.PeakEngineBytes > s.PeakEngineBytes {
		s.PeakEngineBytes = o.PeakEngineBytes
	}
	s.Exec.Add(o.Exec)
}

// Connector is the backend interface (Presto's Connector API). The modern
// surface is Connector v3 — StreamingConnector's OpenScan/OpenAggregateScan
// returning pull-based RowIterators (see iterator.go); the slice-returning
// Scan/AggregateScan here remain as the v2 compatibility contract so
// out-of-tree connectors keep compiling, and the engine adapts them through
// a materialized iterator (EXPLAIN's exec=materialized). Connectors that
// cannot run aggregates return ErrPushdownUnsupported from AggregateScan
// and let the engine aggregate the scanned rows itself.
type Connector interface {
	// Name returns the catalog name ("pinot", "hive", ...).
	Name() string
	// Tables lists the connector's table names.
	Tables() []string
	// Schema describes one table.
	Schema(table string) (*metadata.Schema, error)
	// Capabilities advertises pushdown support, explicitly per fragment.
	Capabilities() Capabilities
	// Scan executes the row-scan fragment and returns rows. The context
	// carries the federated query's deadline/cancellation into the backend,
	// so a timed-out query stops scanning inside the OLAP layer too.
	Scan(ctx context.Context, table string, pd Pushdown) ([]record.Record, QueryStats, error)
	// AggregateScan executes a whole aggregate query inside the backend
	// and returns one row per group, named by SelectItem.OutputName.
	AggregateScan(ctx context.Context, table string, aq AggregateQuery) ([]record.Record, QueryStats, error)
}

// ---- Pinot connector ----

// PinotConnector exposes OLAP deployments as federated tables with full
// pushdown (§4.3.2: "predicate pushdowns and aggregation function pushdowns
// enable us to achieve sub-second query latencies"). AggregateScan maps to
// the broker's scatter-gather, so a federated GROUP BY moves per-group
// aggregate rows across the connector boundary instead of raw rows.
type PinotConnector struct {
	name    string
	brokers map[string]*olap.Broker
	schemas map[string]*metadata.Schema
	// DisablePushdown forces scan-only behavior — the E11/E18 baseline
	// ("our first version of this connector only included predicate
	// pushdown").
	DisablePushdown bool
	// Parallelism bounds the per-server segment-scan worker pool of brokers
	// created by AddTable (0 = GOMAXPROCS, 1 = serial). Set before AddTable.
	Parallelism int
	// Router selects the broker routing strategy for tables added after it
	// is set (nil = round-robin). E.g. &olap.PartitionRouter{} lets
	// partition-filtered federated queries skip servers entirely.
	Router olap.Router
	// TrimExact disables the OLAP layer's bounded top-K trimming for
	// pushed-down ORDER BY/LIMIT queries: exact full-sort results at full
	// fan-out cost. The default (false) trims like Pinot.
	TrimExact bool
	// CacheMaxBytes enables the broker result cache (with in-flight
	// deduplication) for tables added after it is set; 0 disables. Cached
	// entries invalidate automatically on any ingest/seal/compact/offload/
	// drop of the backing table.
	CacheMaxBytes int64
	// Admission enables per-tenant quotas and bounded queueing on brokers
	// created by AddTable; overloaded queries fail with olap.ErrOverloaded.
	Admission *qcache.AdmissionConfig
	// Tenant tags every query this connector issues, for the brokers'
	// per-tenant admission quotas ("" is the default tenant).
	Tenant string
	// EnableViews attaches a materialized-view registry to tables added
	// after it is set: standing aggregate shapes registered via
	// RegisterView are maintained incrementally from the table's mutation
	// feed and served ahead of the result cache (EXPLAIN's view=hit line)
	// regardless of write rate. Nil disables views. Set before AddTable.
	EnableViews *matview.Config
	views       map[string]*matview.Registry
}

// NewPinotConnector creates an empty Pinot catalog.
func NewPinotConnector(name string) *PinotConnector {
	return &PinotConnector{
		name:    name,
		brokers: make(map[string]*olap.Broker),
		schemas: make(map[string]*metadata.Schema),
		views:   make(map[string]*matview.Registry),
	}
}

// AddTable registers a deployment under its table name.
func (p *PinotConnector) AddTable(d *olap.Deployment) {
	cfg := d.Table()
	var views olap.ViewServer
	if p.EnableViews != nil {
		reg := matview.NewRegistry(d, *p.EnableViews)
		p.views[cfg.Name] = reg
		views = reg
	}
	p.brokers[cfg.Name] = olap.NewBrokerWithOptions(d, olap.BrokerOptions{
		Workers:       p.Parallelism,
		Router:        p.Router,
		CacheMaxBytes: p.CacheMaxBytes,
		Admission:     p.Admission,
		Views:         views,
	})
	p.schemas[cfg.Name] = cfg.Schema
}

// RegisterView registers a standing aggregate fragment as a materialized
// view on one table: the exact OLAP query AggregateScan would push down for
// this fragment is materialized once and maintained incrementally, so every
// later federated query with the same shape is served from the view. The
// connector must have been created with EnableViews set before AddTable.
func (p *PinotConnector) RegisterView(ctx context.Context, table string, aq AggregateQuery) error {
	reg, ok := p.views[table]
	if !ok {
		return fmt.Errorf("fedsql: views not enabled for pinot table %q", table)
	}
	q, _, err := p.aggQuery(table, aq)
	if err != nil {
		return err
	}
	_, err = reg.Register(ctx, &olap.QueryRequest{Query: q})
	return err
}

// ViewRegistry exposes one table's registry (nil when views are disabled),
// for stats and direct registration of non-SQL shapes.
func (p *PinotConnector) ViewRegistry(table string) *matview.Registry {
	return p.views[table]
}

// Name implements Connector.
func (p *PinotConnector) Name() string { return p.name }

// Tables implements Connector.
func (p *PinotConnector) Tables() []string {
	out := make([]string, 0, len(p.brokers))
	for t := range p.brokers {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Schema implements Connector.
func (p *PinotConnector) Schema(table string) (*metadata.Schema, error) {
	s, ok := p.schemas[table]
	if !ok {
		return nil, fmt.Errorf("fedsql: pinot table %q not found", table)
	}
	return s.Clone(), nil
}

// Capabilities implements Connector: every fragment runs inside the OLAP
// layer.
func (p *PinotConnector) Capabilities() Capabilities {
	if p.DisablePushdown {
		return Capabilities{}
	}
	return Capabilities{Filters: true, Aggregations: true, GroupBy: true, OrderBy: true, Limit: true}
}

// OpenScan implements StreamingConnector: the row-scan fragment becomes an
// OLAP streaming query (Broker.ExecuteStream), so batches flow from the
// servers' vectorized segment kernels straight to the engine — the first
// batch arrives while the slowest server is still scanning, and closing
// the iterator early (LIMIT satisfied, join done, query cancelled) stops
// the backend scan. Note the native streaming path bypasses the broker's
// result cache, views and admission — a stream is consumed once, not
// shared; ORDER BY scans fall back to Broker.Execute internally (batches
// still stream across the boundary, with those services intact).
func (p *PinotConnector) OpenScan(ctx context.Context, table string, pd Pushdown) (RowIterator, error) {
	broker, ok := p.brokers[table]
	if !ok {
		return nil, fmt.Errorf("fedsql: pinot table %q not found", table)
	}
	q := &olap.Query{Table: table, Select: pd.Columns}
	stats := QueryStats{PushedFilters: len(pd.Filters) > 0, Streamed: true}
	for _, f := range pd.Filters {
		of, err := toOlapFilter(f)
		if err != nil {
			return nil, err
		}
		q.Filters = append(q.Filters, of)
	}
	for _, o := range pd.OrderBy {
		q.OrderBy = append(q.OrderBy, olap.OrderSpec{Column: o.Column, Desc: o.Desc})
	}
	if pd.Limit > 0 {
		q.Limit = pd.Limit
		stats.PushedLimit = true
	}
	qs, err := broker.ExecuteStream(ctx, &olap.QueryRequest{Query: q, TrimExact: p.TrimExact, Tenant: p.Tenant})
	if err != nil {
		return nil, err
	}
	return &brokerIterator{qs: qs, stats: stats}, nil
}

// OpenAggregateScan implements StreamingConnector. Aggregate pushdown
// produces finalized per-group rows — there is nothing to stream until the
// backend has seen every input row — so this executes eagerly (through the
// broker's cache, views and admission, exactly like AggregateScan) and
// chunks the small result.
func (p *PinotConnector) OpenAggregateScan(ctx context.Context, table string, aq AggregateQuery) (RowIterator, error) {
	rows, stats, err := p.AggregateScan(ctx, table, aq)
	if err != nil {
		return nil, err
	}
	return newMaterializedIterator(rows, aggColumns(aq), stats), nil
}

// aggColumns is the deterministic column order of an aggregate fragment's
// result rows: group-by columns, then aggregate output names.
func aggColumns(aq AggregateQuery) []string {
	cols := append([]string(nil), aq.GroupBy...)
	for _, a := range aq.Aggs {
		cols = append(cols, a.OutputName())
	}
	return cols
}

// Scan implements Connector (v2). It is a thin compatibility adapter that
// drains OpenScan into the legacy slice shape; new callers should use
// OpenScan and pull batches.
func (p *PinotConnector) Scan(ctx context.Context, table string, pd Pushdown) ([]record.Record, QueryStats, error) {
	it, err := p.OpenScan(ctx, table, pd)
	if err != nil {
		return nil, QueryStats{}, err
	}
	return drainIterator(ctx, it)
}

// brokerIterator adapts an olap.QueryStream to the RowIterator contract.
// The olap layer's RowBatch backing arrays are shared directly into the
// fedsql Batch — both contracts scope a batch's validity to the next
// Next/Close call, so no copy is needed at the boundary.
type brokerIterator struct {
	qs    *olap.QueryStream
	stats QueryStats
	batch Batch
	done  bool
}

func (b *brokerIterator) Columns() []string { return b.qs.Columns() }

func (b *brokerIterator) Next(ctx context.Context) (*Batch, error) {
	rb, err := b.qs.Next(ctx)
	if err == io.EOF {
		b.finish()
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	b.stats.RowsReturned += int64(rb.Len)
	b.stats.BatchesStreamed++
	b.batch.Columns = rb.Columns
	b.batch.Cols = rb.Cols
	b.batch.Len = rb.Len
	// The engine-resident footprint of a streaming scan is one batch.
	if bb := b.batch.Bytes(); bb > b.stats.PeakEngineBytes {
		b.stats.PeakEngineBytes = bb
	}
	return &b.batch, nil
}

// finish folds the backend's end-of-stream stats in (routing, execution
// counters, applied trim budget).
func (b *brokerIterator) finish() {
	if b.done {
		return
	}
	b.done = true
	b.stats.Exec = b.qs.Stats()
	b.stats.Router = b.qs.Route().Router
	b.stats.TrimK = b.qs.TrimK()
}

func (b *brokerIterator) Stats() QueryStats { return b.stats }

func (b *brokerIterator) Close() error {
	err := b.qs.Close()
	b.finish()
	return err
}

// AggregateScan implements Connector by executing the whole aggregate
// query in the OLAP layer: servers ship mergeable partial-aggregate states
// to the broker, and only the finalized per-group rows cross the connector
// boundary. (v2 surface; OpenAggregateScan wraps this same execution.)
func (p *PinotConnector) AggregateScan(ctx context.Context, table string, aq AggregateQuery) ([]record.Record, QueryStats, error) {
	if p.DisablePushdown {
		return nil, QueryStats{}, ErrPushdownUnsupported
	}
	broker, ok := p.brokers[table]
	if !ok {
		return nil, QueryStats{}, fmt.Errorf("fedsql: pinot table %q not found", table)
	}
	q, stats, err := p.aggQuery(table, aq)
	if err != nil {
		return nil, QueryStats{}, err
	}
	return p.run(ctx, broker, q, stats)
}

// aggQuery translates an aggregate fragment into the OLAP query pushed into
// the broker — shared by AggregateScan and RegisterView, so a registered
// view's shape is guaranteed to match the later pushed-down execution.
func (p *PinotConnector) aggQuery(table string, aq AggregateQuery) (*olap.Query, QueryStats, error) {
	q := &olap.Query{Table: table, GroupBy: aq.GroupBy}
	stats := QueryStats{PushedFilters: len(aq.Filters) > 0, PushedAggs: true}
	for _, f := range aq.Filters {
		of, err := toOlapFilter(f)
		if err != nil {
			return nil, QueryStats{}, err
		}
		q.Filters = append(q.Filters, of)
	}
	for _, a := range aq.Aggs {
		q.Aggs = append(q.Aggs, olap.AggSpec{Kind: toOlapAgg(a.Func), Column: a.Column, As: a.OutputName()})
	}
	for _, o := range aq.OrderBy {
		q.OrderBy = append(q.OrderBy, olap.OrderSpec{Column: o.Column, Desc: o.Desc})
	}
	if aq.Limit > 0 {
		q.Limit = aq.Limit
		stats.PushedLimit = true
	}
	return q, stats, nil
}

// run executes an OLAP query through the typed v2 broker surface and
// converts the response into connector rows + unified stats.
func (p *PinotConnector) run(ctx context.Context, broker *olap.Broker, q *olap.Query, stats QueryStats) ([]record.Record, QueryStats, error) {
	resp, err := broker.Execute(ctx, &olap.QueryRequest{Query: q, TrimExact: p.TrimExact, Tenant: p.Tenant})
	if err != nil {
		return nil, QueryStats{}, err
	}
	// The backend reports the top-K budget it actually applied (EXPLAIN's
	// trim=server k=N line); no connector-side re-derivation.
	stats.TrimK = resp.TrimK
	rows := make([]record.Record, len(resp.Rows))
	for i, r := range resp.Rows {
		rec := make(record.Record, len(resp.Columns))
		for ci, c := range resp.Columns {
			if r[ci] != nil {
				rec[c] = r[ci]
			}
		}
		rows[i] = rec
	}
	stats.RowsReturned = int64(len(rows))
	stats.Router = resp.Route.Router
	stats.Exec = resp.Stats
	return rows, stats, nil
}

func toOlapFilter(f sqlparse.Predicate) (olap.Filter, error) {
	out := olap.Filter{Column: f.Column, Value: f.Value, Value2: f.Value2, Values: f.Values}
	switch f.Op {
	case sqlparse.CmpEq:
		out.Op = olap.OpEq
	case sqlparse.CmpNe:
		out.Op = olap.OpNe
	case sqlparse.CmpLt:
		out.Op = olap.OpLt
	case sqlparse.CmpLe:
		out.Op = olap.OpLe
	case sqlparse.CmpGt:
		out.Op = olap.OpGt
	case sqlparse.CmpGe:
		out.Op = olap.OpGe
	case sqlparse.CmpIn:
		out.Op = olap.OpIn
	case sqlparse.CmpBetween:
		out.Op = olap.OpBetween
	default:
		return out, fmt.Errorf("fedsql: unsupported predicate op %d", f.Op)
	}
	return out, nil
}

func toOlapAgg(f sqlparse.FuncKind) olap.AggKind {
	switch f {
	case sqlparse.FuncSum:
		return olap.AggSum
	case sqlparse.FuncMin:
		return olap.AggMin
	case sqlparse.FuncMax:
		return olap.AggMax
	case sqlparse.FuncAvg:
		return olap.AggAvg
	default:
		return olap.AggCount
	}
}

// ---- Archive (Hive-like) connector ----

// ArchiveConnector exposes the object store's columnar archive as read-only
// tables. It advertises no pushdown: filters and aggregations run in the
// engine, like Presto over HDFS/Hive — the latency contrast in E11/E18.
type ArchiveConnector struct {
	name    string
	store   objstore.Store
	schemas map[string]*metadata.Schema
}

// NewArchiveConnector creates an archive catalog over the store.
func NewArchiveConnector(name string, store objstore.Store) *ArchiveConnector {
	return &ArchiveConnector{name: name, store: store, schemas: make(map[string]*metadata.Schema)}
}

// AddTable registers an archived dataset.
func (a *ArchiveConnector) AddTable(dataset string, schema *metadata.Schema) {
	a.schemas[dataset] = schema.Clone()
}

// Name implements Connector.
func (a *ArchiveConnector) Name() string { return a.name }

// Tables implements Connector.
func (a *ArchiveConnector) Tables() []string {
	out := make([]string, 0, len(a.schemas))
	for t := range a.schemas {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Schema implements Connector.
func (a *ArchiveConnector) Schema(table string) (*metadata.Schema, error) {
	s, ok := a.schemas[table]
	if !ok {
		return nil, fmt.Errorf("fedsql: archive table %q not found", table)
	}
	return s.Clone(), nil
}

// Capabilities implements Connector. The archive pushes nothing down —
// every fragment is declared unsupported so the engine plans full
// engine-side processing (and counts the aggregate fallback), instead of
// silently inheriting whatever the zero value happens to mean.
func (a *ArchiveConnector) Capabilities() Capabilities {
	return Capabilities{
		Filters:      false,
		Aggregations: false,
		GroupBy:      false,
		OrderBy:      false,
		Limit:        false,
	}
}

// Scan implements Connector with a full table read.
func (a *ArchiveConnector) Scan(ctx context.Context, table string, pd Pushdown) ([]record.Record, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	schema, ok := a.schemas[table]
	if !ok {
		return nil, QueryStats{}, fmt.Errorf("fedsql: archive table %q not found", table)
	}
	reader := objstore.NewArchiveReader(a.store, table, schema)
	rows, err := reader.ReadAll()
	if err != nil {
		return nil, QueryStats{}, err
	}
	return rows, QueryStats{RowsReturned: int64(len(rows))}, nil
}

// AggregateScan implements Connector: the archive cannot aggregate, so the
// engine must pull rows and aggregate itself.
func (a *ArchiveConnector) AggregateScan(ctx context.Context, table string, aq AggregateQuery) ([]record.Record, QueryStats, error) {
	return nil, QueryStats{}, ErrPushdownUnsupported
}
