package fedsql

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/metadata"
	"repro/internal/objstore"
	"repro/internal/olap"
	"repro/internal/record"
	"repro/internal/sqlparse"
)

// Capabilities advertises which plan fragments a connector can absorb.
type Capabilities struct {
	// Filters: WHERE predicates execute inside the backend.
	Filters bool
	// Aggregations: GROUP BY + aggregate functions execute inside.
	Aggregations bool
	// Limit: LIMIT (and ORDER BY with it) execute inside.
	Limit bool
}

// Pushdown is the plan fragment handed to a connector's Scan. Fields the
// connector did not advertise are guaranteed empty.
type Pushdown struct {
	// Columns is the projection (empty = all columns).
	Columns []string
	// Filters are WHERE conjuncts on this table.
	Filters []sqlparse.Predicate
	// GroupBy + Aggs describe a pushed-down aggregation; when set, Scan
	// returns aggregated rows named by SelectItem.OutputName.
	GroupBy []string
	Aggs    []sqlparse.SelectItem
	// OrderBy/Limit apply inside the backend (only valid with Aggs or a
	// plain projection).
	OrderBy []sqlparse.OrderItem
	Limit   int
}

// ScanStats reports connector-side work, for EXPLAIN-style diagnostics and
// the pushdown experiment (E11).
type ScanStats struct {
	// RowsReturned is what crossed the connector boundary into the engine.
	RowsReturned int64
	// Pushed indicates the fragment actually executed inside the backend.
	PushedFilters bool
	PushedAggs    bool
	PushedLimit   bool
}

// Connector is the backend interface (Presto's Connector API).
type Connector interface {
	// Name returns the catalog name ("pinot", "hive", ...).
	Name() string
	// Tables lists the connector's table names.
	Tables() []string
	// Schema describes one table.
	Schema(table string) (*metadata.Schema, error)
	// Capabilities advertises pushdown support.
	Capabilities() Capabilities
	// Scan executes the pushed-down fragment and returns rows. The context
	// carries the federated query's deadline/cancellation into the backend,
	// so a timed-out query stops scanning inside the OLAP layer too.
	Scan(ctx context.Context, table string, pd Pushdown) ([]record.Record, ScanStats, error)
}

// ---- Pinot connector ----

// PinotConnector exposes OLAP deployments as federated tables with full
// pushdown (§4.3.2: "predicate pushdowns and aggregation function pushdowns
// enable us to achieve sub-second query latencies").
type PinotConnector struct {
	name    string
	brokers map[string]*olap.Broker
	schemas map[string]*metadata.Schema
	// DisablePushdown forces scan-only behavior — the E11 baseline ("our
	// first version of this connector only included predicate pushdown").
	DisablePushdown bool
	// Parallelism bounds the per-server segment-scan worker pool of brokers
	// created by AddTable (0 = GOMAXPROCS, 1 = serial). Set before AddTable.
	Parallelism int
}

// NewPinotConnector creates an empty Pinot catalog.
func NewPinotConnector(name string) *PinotConnector {
	return &PinotConnector{
		name:    name,
		brokers: make(map[string]*olap.Broker),
		schemas: make(map[string]*metadata.Schema),
	}
}

// AddTable registers a deployment under its table name.
func (p *PinotConnector) AddTable(d *olap.Deployment) {
	cfg := d.Table()
	p.brokers[cfg.Name] = olap.NewBrokerWithOptions(d, olap.BrokerOptions{Workers: p.Parallelism})
	p.schemas[cfg.Name] = cfg.Schema
}

// Name implements Connector.
func (p *PinotConnector) Name() string { return p.name }

// Tables implements Connector.
func (p *PinotConnector) Tables() []string {
	out := make([]string, 0, len(p.brokers))
	for t := range p.brokers {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Schema implements Connector.
func (p *PinotConnector) Schema(table string) (*metadata.Schema, error) {
	s, ok := p.schemas[table]
	if !ok {
		return nil, fmt.Errorf("fedsql: pinot table %q not found", table)
	}
	return s.Clone(), nil
}

// Capabilities implements Connector.
func (p *PinotConnector) Capabilities() Capabilities {
	if p.DisablePushdown {
		return Capabilities{}
	}
	return Capabilities{Filters: true, Aggregations: true, Limit: true}
}

// Scan implements Connector by translating the pushdown into an OLAP query
// executed under the caller's context, so the broker's parallel
// scatter-gather (and its cancellation) reaches federated queries too.
func (p *PinotConnector) Scan(ctx context.Context, table string, pd Pushdown) ([]record.Record, ScanStats, error) {
	broker, ok := p.brokers[table]
	if !ok {
		return nil, ScanStats{}, fmt.Errorf("fedsql: pinot table %q not found", table)
	}
	q := &olap.Query{Table: table}
	for _, f := range pd.Filters {
		of, err := toOlapFilter(f)
		if err != nil {
			return nil, ScanStats{}, err
		}
		q.Filters = append(q.Filters, of)
	}
	stats := ScanStats{PushedFilters: len(pd.Filters) > 0}
	if len(pd.Aggs) > 0 {
		q.GroupBy = pd.GroupBy
		for _, a := range pd.Aggs {
			q.Aggs = append(q.Aggs, olap.AggSpec{Kind: toOlapAgg(a.Func), Column: a.Column, As: a.OutputName()})
		}
		stats.PushedAggs = true
	} else {
		q.Select = pd.Columns
	}
	for _, o := range pd.OrderBy {
		q.OrderBy = append(q.OrderBy, olap.OrderSpec{Column: o.Column, Desc: o.Desc})
	}
	if pd.Limit > 0 {
		q.Limit = pd.Limit
		stats.PushedLimit = true
	}
	res, err := broker.QueryCtx(ctx, q)
	if err != nil {
		return nil, ScanStats{}, err
	}
	rows := make([]record.Record, len(res.Rows))
	for i, r := range res.Rows {
		rec := make(record.Record, len(res.Columns))
		for ci, c := range res.Columns {
			if r[ci] != nil {
				rec[c] = r[ci]
			}
		}
		rows[i] = rec
	}
	stats.RowsReturned = int64(len(rows))
	return rows, stats, nil
}

func toOlapFilter(f sqlparse.Predicate) (olap.Filter, error) {
	out := olap.Filter{Column: f.Column, Value: f.Value, Value2: f.Value2, Values: f.Values}
	switch f.Op {
	case sqlparse.CmpEq:
		out.Op = olap.OpEq
	case sqlparse.CmpNe:
		out.Op = olap.OpNe
	case sqlparse.CmpLt:
		out.Op = olap.OpLt
	case sqlparse.CmpLe:
		out.Op = olap.OpLe
	case sqlparse.CmpGt:
		out.Op = olap.OpGt
	case sqlparse.CmpGe:
		out.Op = olap.OpGe
	case sqlparse.CmpIn:
		out.Op = olap.OpIn
	case sqlparse.CmpBetween:
		out.Op = olap.OpBetween
	default:
		return out, fmt.Errorf("fedsql: unsupported predicate op %d", f.Op)
	}
	return out, nil
}

func toOlapAgg(f sqlparse.FuncKind) olap.AggKind {
	switch f {
	case sqlparse.FuncSum:
		return olap.AggSum
	case sqlparse.FuncMin:
		return olap.AggMin
	case sqlparse.FuncMax:
		return olap.AggMax
	case sqlparse.FuncAvg:
		return olap.AggAvg
	default:
		return olap.AggCount
	}
}

// ---- Archive (Hive-like) connector ----

// ArchiveConnector exposes the object store's columnar archive as read-only
// tables. It advertises no pushdown: filters and aggregations run in the
// engine, like Presto over HDFS/Hive — the latency contrast in E11.
type ArchiveConnector struct {
	name    string
	store   objstore.Store
	schemas map[string]*metadata.Schema
}

// NewArchiveConnector creates an archive catalog over the store.
func NewArchiveConnector(name string, store objstore.Store) *ArchiveConnector {
	return &ArchiveConnector{name: name, store: store, schemas: make(map[string]*metadata.Schema)}
}

// AddTable registers an archived dataset.
func (a *ArchiveConnector) AddTable(dataset string, schema *metadata.Schema) {
	a.schemas[dataset] = schema.Clone()
}

// Name implements Connector.
func (a *ArchiveConnector) Name() string { return a.name }

// Tables implements Connector.
func (a *ArchiveConnector) Tables() []string {
	out := make([]string, 0, len(a.schemas))
	for t := range a.schemas {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Schema implements Connector.
func (a *ArchiveConnector) Schema(table string) (*metadata.Schema, error) {
	s, ok := a.schemas[table]
	if !ok {
		return nil, fmt.Errorf("fedsql: archive table %q not found", table)
	}
	return s.Clone(), nil
}

// Capabilities implements Connector: none (full engine-side processing).
func (a *ArchiveConnector) Capabilities() Capabilities { return Capabilities{} }

// Scan implements Connector with a full table read.
func (a *ArchiveConnector) Scan(ctx context.Context, table string, pd Pushdown) ([]record.Record, ScanStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, ScanStats{}, err
	}
	schema, ok := a.schemas[table]
	if !ok {
		return nil, ScanStats{}, fmt.Errorf("fedsql: archive table %q not found", table)
	}
	reader := objstore.NewArchiveReader(a.store, table, schema)
	rows, err := reader.ReadAll()
	if err != nil {
		return nil, ScanStats{}, err
	}
	return rows, ScanStats{RowsReturned: int64(len(rows))}, nil
}
