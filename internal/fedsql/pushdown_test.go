package fedsql

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/objstore"
	"repro/internal/olap"
)

// equivalenceQueries is the matrix every aggregate/group-by/limit shape must
// answer identically through AggregateScan pushdown and through the
// row-scan + engine-side-aggregation fallback.
var equivalenceQueries = []string{
	"SELECT COUNT(*) FROM pinot.orders",
	"SELECT COUNT(*) AS n, SUM(amount) AS total FROM pinot.orders",
	"SELECT AVG(amount) AS mean FROM pinot.orders",
	"SELECT MIN(amount) AS lo, MAX(amount) AS hi FROM pinot.orders",
	"SELECT city, COUNT(*) AS n FROM pinot.orders GROUP BY city",
	"SELECT city, SUM(amount) AS total, AVG(amount) AS mean FROM pinot.orders GROUP BY city ORDER BY city",
	"SELECT city, COUNT(*) AS n FROM pinot.orders WHERE amount > 3 GROUP BY city ORDER BY n DESC",
	"SELECT city, SUM(amount) AS revenue FROM pinot.orders WHERE city = 'sf' GROUP BY city",
	"SELECT city, COUNT(*) AS n FROM pinot.orders GROUP BY city ORDER BY n DESC LIMIT 2",
	"SELECT COUNT(*) FROM pinot.orders WHERE amount >= 2 AND amount <= 8",
	"SELECT order_id, amount FROM pinot.orders WHERE city = 'nyc' ORDER BY order_id LIMIT 9",
}

func rowsKey(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v\n", res.Columns)
	for _, row := range res.Rows {
		for _, v := range row {
			fmt.Fprintf(&b, "%v|", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestPushdownEquivalenceMatrix: every aggregate/group-by/limit query must
// return identical results via AggregateScan pushdown and via the row-scan
// fallback path (DisablePushdown). Run under -race in CI.
func TestPushdownEquivalenceMatrix(t *testing.T) {
	e, pinot := setupEngine(t, 300)
	for _, sql := range equivalenceQueries {
		t.Run(sql, func(t *testing.T) {
			pinot.DisablePushdown = false
			pushed, err := e.Query(sql)
			if err != nil {
				t.Fatalf("pushdown: %v", err)
			}
			pinot.DisablePushdown = true
			fallback, err := e.Query(sql)
			pinot.DisablePushdown = false
			if err != nil {
				t.Fatalf("fallback: %v", err)
			}
			if got, want := rowsKey(pushed), rowsKey(fallback); got != want {
				t.Errorf("pushdown and fallback disagree:\npushed:\n%s\nfallback:\n%s", got, want)
			}
		})
	}
}

// TestStringAggRejectedOnBothPaths: SUM/AVG/MIN/MAX over a string column
// must error on the pushdown path (OLAP-layer validation) AND on the
// engine-side fallback path (hive / pushdown-disabled) — never silently
// aggregate coerced zeroes — so the two paths stay equivalent.
func TestStringAggRejectedOnBothPaths(t *testing.T) {
	e, pinot := setupEngine(t, 120)
	queries := []string{
		"SELECT SUM(city) AS s FROM %s.orders",
		"SELECT status, AVG(city) AS a FROM %s.orders GROUP BY status",
		"SELECT MIN(city) AS lo, MAX(city) AS hi FROM %s.orders",
	}
	for _, tmpl := range queries {
		if _, err := e.Query(fmt.Sprintf(tmpl, "pinot")); err == nil {
			t.Errorf("pushdown path accepted %q", fmt.Sprintf(tmpl, "pinot"))
		}
		if _, err := e.Query(fmt.Sprintf(tmpl, "hive")); err == nil {
			t.Errorf("engine-side fallback accepted %q", fmt.Sprintf(tmpl, "hive"))
		}
		pinot.DisablePushdown = true
		_, err := e.Query(fmt.Sprintf(tmpl, "pinot"))
		pinot.DisablePushdown = false
		if err == nil {
			t.Errorf("pushdown-disabled fallback accepted %q", fmt.Sprintf(tmpl, "pinot"))
		}
	}
	// COUNT over strings stays valid on every path.
	for _, cat := range []string{"pinot", "hive"} {
		if _, err := e.Query(fmt.Sprintf("SELECT COUNT(city) AS n FROM %s.orders", cat)); err != nil {
			t.Errorf("COUNT(city) on %s: %v", cat, err)
		}
	}
}

func TestAggregateFallbackCountedAndLogged(t *testing.T) {
	e, pinot := setupEngine(t, 120)
	var logged []string
	e.Logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}

	// The archive cannot aggregate: the engine must count (and log) the
	// fallback while still answering correctly.
	res, err := e.Query("SELECT city, COUNT(*) AS n FROM hive.orders GROUP BY city")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PushdownFallbacks != 1 {
		t.Errorf("archive PushdownFallbacks = %d, want 1", res.Stats.PushdownFallbacks)
	}
	if res.Stats.PushedAggs {
		t.Error("archive scan must not claim pushed aggregations")
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "fallback") {
		t.Errorf("fallback not logged: %v", logged)
	}

	// Pushdown-disabled Pinot takes the same fallback path.
	pinot.DisablePushdown = true
	res, err = e.Query("SELECT COUNT(*) FROM pinot.orders")
	pinot.DisablePushdown = false
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PushdownFallbacks != 1 {
		t.Errorf("disabled-pinot PushdownFallbacks = %d, want 1", res.Stats.PushdownFallbacks)
	}

	// A pushed aggregate records no fallback.
	res, err = e.Query("SELECT COUNT(*) FROM pinot.orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PushdownFallbacks != 0 || !res.Stats.PushedAggs {
		t.Errorf("pushed aggregate: fallbacks=%d pushedAggs=%v", res.Stats.PushdownFallbacks, res.Stats.PushedAggs)
	}
}

func TestArchiveCapabilitiesExplicit(t *testing.T) {
	a := NewArchiveConnector("hive", nil)
	caps := a.Capabilities()
	if caps.Filters || caps.Aggregations || caps.GroupBy || caps.OrderBy || caps.Limit {
		t.Errorf("archive capabilities must all be false: %+v", caps)
	}
	if _, _, err := a.AggregateScan(context.Background(), "orders", AggregateQuery{}); !errors.Is(err, ErrPushdownUnsupported) {
		t.Errorf("archive AggregateScan err = %v, want ErrPushdownUnsupported", err)
	}
}

func TestAggregateScanMovesAggregateRowsOnly(t *testing.T) {
	e, _ := setupEngine(t, 300)
	res, err := e.Query("SELECT city, SUM(amount) AS total FROM pinot.orders GROUP BY city")
	if err != nil {
		t.Fatal(err)
	}
	// 3 cities in the fixture: exactly 3 aggregate rows cross the boundary.
	if res.Stats.RowsReturned != 3 {
		t.Errorf("RowsReturned = %d, want 3 (aggregate rows, not raw rows)", res.Stats.RowsReturned)
	}
	if res.Stats.Router == "" {
		t.Error("stats should carry the backend routing strategy")
	}
	if res.Stats.Exec.SegmentsScanned == 0 {
		t.Error("unified stats should carry backend ExecStats")
	}
}

func TestPlanLinesDescribeDecisions(t *testing.T) {
	e, pinot := setupEngine(t, 120)
	res, err := e.Query("SELECT city, COUNT(*) AS n FROM pinot.orders WHERE city = 'sf' GROUP BY city")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan) != 1 {
		t.Fatalf("plan = %v, want one scan line", res.Plan)
	}
	line := res.Plan[0]
	for _, want := range []string{"scan pinot.orders", "aggregate-scan", "filters", "aggs", "route=", "rows_moved=1"} {
		if !strings.Contains(line, want) {
			t.Errorf("plan line %q missing %q", line, want)
		}
	}

	pinot.DisablePushdown = true
	res, err = e.Query("SELECT city, COUNT(*) AS n FROM pinot.orders GROUP BY city")
	pinot.DisablePushdown = false
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan) != 1 || !strings.Contains(res.Plan[0], "row-scan+engine-agg") {
		t.Errorf("fallback plan = %v, want row-scan+engine-agg line", res.Plan)
	}

	// Joins carry one line per side.
	res, err = e.Query(`SELECT c.region, SUM(o.amount) AS revenue
		FROM pinot.orders o JOIN hive.cities c ON o.city = c.city
		GROUP BY c.region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan) != 2 {
		t.Errorf("join plan = %v, want two scan lines", res.Plan)
	}
}

// TestPartitionRoutedFederatedQuery wires a partition-aware router through
// the connector: a partition-filtered federated aggregate must contact a
// strict subset of servers and report pruned partitions in the unified
// stats.
func TestPartitionRoutedFederatedQuery(t *testing.T) {
	const partitions = 4
	servers := make([]*olap.Server, partitions)
	for i := range servers {
		servers[i] = olap.NewServer(fmt.Sprintf("s%d", i))
	}
	d, err := olap.NewDeployment(olap.DeploymentConfig{
		Table: olap.TableConfig{
			Name: "orders", Schema: ordersSchema(), SegmentRows: 25,
			Replicas: 2, PartitionColumn: "city", Partitions: partitions,
		},
		Servers:      servers,
		SegmentStore: objstore.NewMemStore(),
		Backup:       olap.BackupP2P,
	})
	if err != nil {
		t.Fatal(err)
	}
	present := map[int]bool{}
	for _, r := range orderRows(300) {
		p := olap.PartitionFor(r["city"], partitions)
		present[p] = true
		if err := d.Ingest(p, r); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < partitions; p++ {
		if err := d.Seal(p); err != nil {
			t.Fatal(err)
		}
	}
	d.WaitUploads()

	pinot := NewPinotConnector("pinot")
	pinot.Router = &olap.PartitionRouter{}
	pinot.AddTable(d)
	e := NewEngine()
	e.Register(pinot)

	res, err := e.Query("SELECT city, SUM(amount) AS revenue FROM pinot.orders WHERE city = 'sf' GROUP BY city")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Router != "partition" {
		t.Errorf("router = %q, want partition", res.Stats.Router)
	}
	if res.Stats.Exec.ServersContacted >= len(servers) {
		t.Errorf("ServersContacted = %d, want < %d", res.Stats.Exec.ServersContacted, len(servers))
	}
	if want := len(present) - 1; res.Stats.Exec.PartitionsPruned != want {
		t.Errorf("PartitionsPruned = %d, want %d", res.Stats.Exec.PartitionsPruned, want)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "sf" {
		t.Errorf("rows = %v", res.Rows)
	}
}
