package fedsql

import (
	"context"
	"io"
	"sort"

	"repro/internal/record"
)

// BatchRows is the row capacity of one streamed batch — matching the OLAP
// layer's scan window, so a batch crosses the connector boundary exactly as
// the segment kernels produced it.
const BatchRows = 4096

// Batch is one column-major batch of rows crossing the connector boundary:
// Cols[c][r] is the value of Columns[c] at batch row r, nil for SQL NULL.
// A batch is valid only until the iterator's following Next or Close call —
// iterators recycle the backing arrays.
type Batch struct {
	Columns []string
	Cols    [][]any
	Len     int
}

// Record copies batch row r into a record, omitting NULLs — the same shape
// the legacy slice surface produced, so adapters stay byte-identical.
func (b *Batch) Record(r int) record.Record {
	rec := make(record.Record, len(b.Columns))
	for ci, c := range b.Columns {
		if v := b.Cols[ci][r]; v != nil {
			rec[c] = v
		}
	}
	return rec
}

// Bytes estimates the resident size of the batch's values — the unit the
// engine tracks as PeakEngineBytes.
func (b *Batch) Bytes() int64 {
	var n int64
	for ci := range b.Cols {
		for _, v := range b.Cols[ci][:b.Len] {
			n += approxValueBytes(v)
		}
	}
	return n
}

func approxValueBytes(v any) int64 {
	const word = 16 // interface header + typical boxed scalar
	if s, ok := v.(string); ok {
		return word + int64(len(s))
	}
	return word
}

// RowIterator is the Connector v3 contract: a pull-based stream of row
// batches. Exactly one consumer calls Next until io.EOF (or an error) and
// must Close on every path — Close is idempotent, safe mid-stream, and
// releases backend resources (the repolint iterclose analyzer enforces the
// discipline). Stats is complete once Next returned io.EOF or after Close.
type RowIterator interface {
	// Columns is the column order of every batch.
	Columns() []string
	// Next returns the next batch, or io.EOF at end of stream. The batch is
	// valid only until the following Next or Close call.
	Next(ctx context.Context) (*Batch, error)
	// Stats reports what the scan did; complete after io.EOF or Close. An
	// early-closed iterator reports only the work actually done.
	Stats() QueryStats
	// Close releases the iterator. Idempotent; required on all paths.
	Close() error
}

// StreamingConnector is Connector v3: backends that can produce results as
// batch iterators implement it alongside the legacy slice surface. The
// engine type-asserts for it and falls back to wrapping Scan/AggregateScan
// in a materialized iterator (EXPLAIN's exec=materialized) otherwise.
type StreamingConnector interface {
	Connector
	// OpenScan starts the row-scan fragment as a batch stream.
	OpenScan(ctx context.Context, table string, pd Pushdown) (RowIterator, error)
	// OpenAggregateScan starts a whole aggregate query; backends that
	// cannot aggregate return ErrPushdownUnsupported, like AggregateScan.
	// Aggregate results are finalized rows, so the iterator typically wraps
	// a materialized result.
	OpenAggregateScan(ctx context.Context, table string, aq AggregateQuery) (RowIterator, error)
}

// openScan returns the v3 iterator for a row scan: the connector's own
// stream when it implements StreamingConnector, a materialized adapter over
// Scan otherwise.
func openScan(ctx context.Context, conn Connector, table string, pd Pushdown) (RowIterator, error) {
	if sc, ok := conn.(StreamingConnector); ok {
		return sc.OpenScan(ctx, table, pd)
	}
	rows, stats, err := conn.Scan(ctx, table, pd)
	if err != nil {
		return nil, err
	}
	return newMaterializedIterator(rows, pd.Columns, stats), nil
}

// openAggregateScan is openScan's aggregate-query counterpart.
func openAggregateScan(ctx context.Context, conn Connector, table string, aq AggregateQuery) (RowIterator, error) {
	if sc, ok := conn.(StreamingConnector); ok {
		return sc.OpenAggregateScan(ctx, table, aq)
	}
	rows, stats, err := conn.AggregateScan(ctx, table, aq)
	if err != nil {
		return nil, err
	}
	return newMaterializedIterator(rows, nil, stats), nil
}

// drainIterator consumes an iterator to completion into the legacy slice
// shape — the compatibility adapter behind the v2 Scan methods. Whatever
// the backend streamed, the caller receives a materialized result, so the
// stats say so: Streamed is cleared and PeakEngineBytes covers the whole
// slice now resident in memory.
func drainIterator(ctx context.Context, it RowIterator) ([]record.Record, QueryStats, error) {
	defer it.Close()
	var rows []record.Record
	for {
		b, err := it.Next(ctx)
		if err == io.EOF {
			stats := it.Stats()
			stats.Streamed = false
			stats.BatchesStreamed = 0
			var total int64
			for _, r := range rows {
				for _, v := range r {
					total += approxValueBytes(v)
				}
			}
			if total > stats.PeakEngineBytes {
				stats.PeakEngineBytes = total
			}
			return rows, stats, nil
		}
		if err != nil {
			return nil, QueryStats{}, err
		}
		for r := 0; r < b.Len; r++ {
			rows = append(rows, b.Record(r))
		}
	}
}

// materializedIterator adapts a fully-materialized []record.Record result
// to the RowIterator contract, chunking it into batches. It reports
// exec=materialized (Streamed stays false) and its PeakEngineBytes is the
// whole result — the slice existed in memory before the first batch was
// pulled, which is exactly what streaming connectors avoid.
type materializedIterator struct {
	cols  []string
	rows  []record.Record
	pos   int
	stats QueryStats
	batch Batch
}

// newMaterializedIterator wraps rows. cols fixes the column order; when
// empty it is derived as the sorted union of record keys (the same star
// order the legacy engine path produced).
func newMaterializedIterator(rows []record.Record, cols []string, stats QueryStats) *materializedIterator {
	if len(cols) == 0 {
		seen := map[string]bool{}
		for _, r := range rows {
			for k := range r {
				seen[k] = true
			}
		}
		cols = make([]string, 0, len(seen))
		for k := range seen {
			cols = append(cols, k)
		}
		sort.Strings(cols)
	}
	for _, r := range rows {
		for _, v := range r {
			stats.PeakEngineBytes += approxValueBytes(v)
		}
	}
	return &materializedIterator{cols: cols, rows: rows, stats: stats}
}

func (m *materializedIterator) Columns() []string { return m.cols }

func (m *materializedIterator) Next(ctx context.Context) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if m.pos >= len(m.rows) {
		return nil, io.EOF
	}
	end := m.pos + BatchRows
	if end > len(m.rows) {
		end = len(m.rows)
	}
	if m.batch.Cols == nil {
		m.batch = Batch{Columns: m.cols, Cols: make([][]any, len(m.cols))}
	}
	for ci, c := range m.cols {
		out := m.batch.Cols[ci][:0]
		for _, r := range m.rows[m.pos:end] {
			out = append(out, r[c])
		}
		m.batch.Cols[ci] = out
	}
	m.batch.Len = end - m.pos
	m.stats.BatchesStreamed++
	m.pos = end
	return &m.batch, nil
}

func (m *materializedIterator) Stats() QueryStats { return m.stats }

func (m *materializedIterator) Close() error {
	m.rows = nil
	m.pos = 0
	return nil
}
