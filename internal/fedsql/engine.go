package fedsql

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/sqlparse"
)

// Result is a federated query result.
type Result struct {
	Columns []string
	Rows    [][]any
	// Stats aggregates connector-side and backend execution statistics.
	Stats QueryStats
	// Plan holds one line per table scan describing the pushdown and
	// routing decisions taken — the payload of sqlshell's EXPLAIN. When the
	// engine has a Tracer, each line also carries the scan's elapsed time.
	Plan []string
	// Trace is the finished span tree of this query when the engine has a
	// Tracer (fedsql.query → scan → broker.execute → ... down to
	// segment.scan) — the payload of sqlshell's EXPLAIN ANALYZE.
	Trace *obs.TraceSummary
}

// Records converts the result rows into records keyed by column name.
func (r *Result) Records() []record.Record {
	out := make([]record.Record, len(r.Rows))
	for i, row := range r.Rows {
		rec := make(record.Record, len(r.Columns))
		for ci, c := range r.Columns {
			if row[ci] != nil {
				rec[c] = row[ci]
			}
		}
		out[i] = rec
	}
	return out
}

// Engine is the federated query engine: it parses SQL, resolves tables
// through registered connectors, plans pushdown per connector capabilities,
// and executes the remainder (joins, subqueries, residual filters and
// aggregations) in memory with a hash-join + hash-aggregation executor.
type Engine struct {
	connectors map[string]Connector
	defaultCat string
	// Logf, when set, receives one diagnostic line per pushdown fallback
	// (an aggregate query a connector could not absorb). Fallbacks are
	// counted in QueryStats.PushdownFallbacks regardless. Logf is the
	// legacy compatibility sink: structured diagnostics flow through Log,
	// and each event is also formatted onto Logf so existing consumers
	// keep seeing one line per fallback.
	Logf func(format string, args ...any)
	// Log, when set, receives structured events (level + key/value fields)
	// for the same diagnostics Logf renders as text.
	Log *obs.Logger
	// Tracer, when set, opens a fedsql.query root span per query; connector
	// scans and the backend broker pipeline record child spans, and the
	// finished tree is attached to Result.Trace.
	Tracer *obs.Tracer
}

// event emits one structured diagnostic through the obs logger and renders
// the same fact onto the legacy Logf sink.
func (e *Engine) event(level obs.Level, msg string, legacy string, fields ...obs.Field) {
	switch level {
	case obs.LevelWarn:
		e.Log.Warn(msg, fields...)
	case obs.LevelError:
		e.Log.Error(msg, fields...)
	default:
		e.Log.Info(msg, fields...)
	}
	if e.Logf != nil {
		e.Logf("%s", legacy)
	}
}

// NewEngine creates an engine. The first registered connector becomes the
// default catalog for unqualified table names.
func NewEngine() *Engine {
	return &Engine{connectors: make(map[string]Connector)}
}

// Register adds a connector under its catalog name.
func (e *Engine) Register(c Connector) {
	if len(e.connectors) == 0 {
		e.defaultCat = c.Name()
	}
	e.connectors[c.Name()] = c
}

// SetDefaultCatalog changes the catalog used for unqualified table names.
func (e *Engine) SetDefaultCatalog(name string) error {
	if _, ok := e.connectors[name]; !ok {
		return fmt.Errorf("fedsql: unknown catalog %q", name)
	}
	e.defaultCat = name
	return nil
}

// Catalogs lists registered connector names, sorted.
func (e *Engine) Catalogs() []string {
	out := make([]string, 0, len(e.connectors))
	for n := range e.connectors {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Query parses and executes one SELECT with the background context.
func (e *Engine) Query(sql string) (*Result, error) {
	//lint:ignore ctxflow pre-PR-1 convenience entry point kept for callers with no context; QueryCtx is the cancellable API
	return e.QueryCtx(context.Background(), sql)
}

// QueryCtx parses and executes one SELECT under a caller context. The
// context flows through every connector Scan, so cancelling it aborts
// backend-side work (e.g. the OLAP broker's parallel scatter-gather) too.
func (e *Engine) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	// Trace wiring: own a fedsql.query root unless the caller's context
	// already carries a span (then the query nests under it and the owner
	// finishes the trace).
	var root obs.Span
	if e.Tracer != nil && !obs.SpanFromContext(ctx).Active() {
		root = e.Tracer.StartTrace("fedsql.query")
		ctx = obs.ContextWithSpan(ctx, root)
	}
	res, err := e.execute(ctx, stmt)
	if root.Active() {
		if err != nil {
			root.SetAttr("error", err.Error())
		} else {
			root.SetRows(int64(len(res.Rows)))
		}
		sum := e.Tracer.FinishTraceSummary(root)
		if err == nil {
			res.Trace = sum
		}
	}
	return res, err
}

// relation is an intermediate result: named rows plus the predicates the
// backend did not absorb.
type relation struct {
	rows  []record.Record
	cols  []string // known column order (may be empty for star)
	stats QueryStats
	// plan collects one EXPLAIN line per table scan beneath this relation.
	plan []string
	// residual predicates still to be applied by the engine.
	residual []sqlparse.Predicate
	// aggregated marks that the connector already produced the final
	// aggregate rows, so the engine skips its own aggregation step.
	aggregated bool
	// ordered marks that ORDER BY/LIMIT already applied in the backend.
	ordered bool
}

func (e *Engine) execute(ctx context.Context, stmt *sqlparse.SelectStmt) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if stmt.From == nil {
		return nil, fmt.Errorf("fedsql: SELECT without FROM is not supported")
	}
	if stmt.Window != nil {
		return nil, fmt.Errorf("fedsql: window functions belong to the streaming SQL layer (flinksql)")
	}
	rel, err := e.resolveFrom(ctx, stmt)
	if err != nil {
		return nil, err
	}
	rows := rel.rows

	// Residual filters (anything not pushed down was left in rel by
	// resolveFrom via the returned residual list — here rel carries rows
	// already filtered when pushdown happened).
	if !rel.aggregated {
		if len(rel.residual) > 0 {
			rows = filterRows(rows, rel.residual)
		}
		if stmt.HasAggregates() {
			rows, err = aggregateRows(rows, stmt)
			if err != nil {
				return nil, err
			}
		}
	}

	cols, err := outputColumns(stmt, rows, rel)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols, Stats: rel.stats, Plan: rel.plan}
	for _, r := range rows {
		row := make([]any, len(cols))
		for ci, c := range cols {
			row[ci] = lookupColumn(r, c)
		}
		res.Rows = append(res.Rows, row)
	}
	if !rel.ordered {
		if err := orderAndLimit(res, stmt); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// resolveFrom evaluates the FROM clause (table / subquery / join) and
// returns rows plus any predicates the backend did not absorb.
func (e *Engine) resolveFrom(ctx context.Context, stmt *sqlparse.SelectStmt) (*relation, error) {
	return e.resolveRef(ctx, stmt.From, stmt)
}

func (e *Engine) resolveRef(ctx context.Context, ref *sqlparse.TableRef, stmt *sqlparse.SelectStmt) (*relation, error) {
	switch {
	case ref.Join != nil:
		return e.resolveJoin(ctx, ref.Join, stmt)
	case ref.Sub != nil:
		sub, err := e.execute(ctx, ref.Sub)
		if err != nil {
			return nil, err
		}
		rel := &relation{rows: sub.Records(), cols: sub.Columns, stats: sub.Stats, plan: sub.Plan}
		// Outer predicates apply in the engine.
		rel.residual = predicatesFor(stmt.Where, ref.RefName(), true)
		return rel, nil
	default:
		return e.scanTable(ctx, ref, stmt)
	}
}

// scanTable plans pushdown for a single-table query: aggregate queries go
// through AggregateScan when the connector declares the needed fragments,
// falling back to row scan + engine-side aggregation otherwise (counted in
// QueryStats.PushdownFallbacks); plain selections go through Scan with
// filter/projection/order/limit pushdown per capability.
func (e *Engine) scanTable(ctx context.Context, ref *sqlparse.TableRef, stmt *sqlparse.SelectStmt) (*relation, error) {
	catalog := ref.Qualifier
	if catalog == "" {
		catalog = e.defaultCat
	}
	conn, ok := e.connectors[catalog]
	if !ok {
		return nil, fmt.Errorf("fedsql: unknown catalog %q", catalog)
	}
	caps := conn.Capabilities()
	var pushFilters []sqlparse.Predicate
	var residual []sqlparse.Predicate

	mine := predicatesFor(stmt.Where, ref.RefName(), true)
	if caps.Filters {
		for _, p := range mine {
			cp := p
			cp.Table = ""
			pushFilters = append(pushFilters, cp)
		}
	} else {
		residual = mine
	}

	isJoinless := stmt.From == ref
	if isJoinless && stmt.HasAggregates() && stmt.Window == nil {
		// Aggregate pushdown: the whole aggregate query executes inside the
		// backend when the connector declares the needed fragments and
		// every filter was absorbed — only per-group aggregate rows cross
		// the connector boundary then, never raw rows.
		if caps.Aggregations && len(residual) == 0 && (len(stmt.GroupBy) == 0 || caps.GroupBy) {
			aq := AggregateQuery{Filters: pushFilters, GroupBy: stripQualifiers(stmt.GroupBy)}
			for _, it := range stmt.Items {
				if it.Func == sqlparse.FuncNone {
					continue // plain group-by columns come back via GroupBy
				}
				item := it
				item.Table = ""
				aq.Aggs = append(aq.Aggs, item)
			}
			if caps.OrderBy {
				aq.OrderBy = append(aq.OrderBy, stmt.OrderBy...)
			}
			if caps.Limit && (len(stmt.OrderBy) == 0 || len(aq.OrderBy) > 0) {
				aq.Limit = stmt.Limit
			}
			sp, sctx := scanSpan(ctx, catalog, ref.Name, "aggregate-scan")
			scanStart := time.Now()
			rows, stats, err := conn.AggregateScan(sctx, ref.Name, aq)
			elapsed := time.Since(scanStart)
			endScanSpan(sp, rows, err)
			if err == nil {
				return &relation{
					rows:       rows,
					stats:      stats,
					plan:       []string{planLine(catalog, ref.Name, "aggregate-scan", stats, 0, elapsed)},
					aggregated: true,
					ordered:    aq.Limit > 0 || len(aq.OrderBy) > 0,
				}, nil
			}
			if !errors.Is(err, ErrPushdownUnsupported) {
				return nil, err
			}
			// A capable-looking connector refused: fall through to the
			// row-scan fallback below.
		}
		// Fallback: pull rows (with whatever filter pushdown the backend
		// offers) and aggregate in the engine.
		sp, sctx := scanSpan(ctx, catalog, ref.Name, "row-scan+engine-agg")
		scanStart := time.Now()
		rows, stats, err := conn.Scan(sctx, ref.Name, Pushdown{Filters: pushFilters})
		elapsed := time.Since(scanStart)
		endScanSpan(sp, rows, err)
		if err != nil {
			return nil, err
		}
		stats.PushdownFallbacks++
		e.event(obs.LevelWarn, "pushdown fallback",
			fmt.Sprintf("fedsql: aggregate pushdown fallback for %s.%s (connector capabilities %+v)", catalog, ref.Name, caps),
			obs.F("catalog", catalog), obs.F("table", ref.Name),
			obs.F("fragment", "aggregate"), obs.F("capabilities", fmt.Sprintf("%+v", caps)))
		return &relation{
			rows:     rows,
			stats:    stats,
			plan:     []string{planLine(catalog, ref.Name, "row-scan+engine-agg", stats, len(residual), elapsed)},
			residual: residual,
		}, nil
	}

	// Projection pushdown for plain selections.
	pd := Pushdown{Filters: pushFilters}
	if !stmt.HasAggregates() && isJoinless {
		pd.Columns = selectionColumns(stmt, ref.RefName(), residual)
		if len(residual) == 0 {
			if caps.OrderBy {
				pd.OrderBy = append(pd.OrderBy, stmt.OrderBy...)
			}
			if caps.Limit && (len(stmt.OrderBy) == 0 || len(pd.OrderBy) > 0) {
				pd.Limit = stmt.Limit
			}
		}
	}
	sp, sctx := scanSpan(ctx, catalog, ref.Name, "row-scan")
	scanStart := time.Now()
	rows, stats, err := conn.Scan(sctx, ref.Name, pd)
	elapsed := time.Since(scanStart)
	endScanSpan(sp, rows, err)
	if err != nil {
		return nil, err
	}
	// ordered marks ORDER BY and LIMIT as fully applied in the backend, so
	// the engine's own orderAndLimit pass can be skipped.
	ordered := (len(stmt.OrderBy) == 0 || len(pd.OrderBy) > 0) &&
		(stmt.Limit == 0 || pd.Limit > 0) &&
		(len(pd.OrderBy) > 0 || pd.Limit > 0)
	return &relation{
		rows:     rows,
		stats:    stats,
		plan:     []string{planLine(catalog, ref.Name, "row-scan", stats, len(residual), elapsed)},
		residual: residual,
		ordered:  ordered,
	}, nil
}

// scanSpan opens the scan child span for one connector call (no-op without
// a trace in ctx).
func scanSpan(ctx context.Context, catalog, table, kind string) (obs.Span, context.Context) {
	sp, sctx := obs.StartSpan(ctx, "scan")
	if sp.Active() {
		sp.SetAttr("catalog", catalog)
		sp.SetAttr("table", table)
		sp.SetAttr("kind", kind)
	}
	return sp, sctx
}

func endScanSpan(sp obs.Span, rows []record.Record, err error) {
	if !sp.Active() {
		return
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
	} else {
		sp.SetRows(int64(len(rows)))
	}
	sp.End()
}

// planLine renders one EXPLAIN line describing a table scan's pushdown and
// routing decisions, plus the scan's elapsed wall time.
func planLine(catalog, table, kind string, st QueryStats, residual int, elapsed time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan %s.%s [%s]", catalog, table, kind)
	var pushed []string
	if st.PushedFilters {
		pushed = append(pushed, "filters")
	}
	if st.PushedAggs {
		pushed = append(pushed, "aggs")
	}
	if st.PushedLimit {
		pushed = append(pushed, "limit")
	}
	if len(pushed) > 0 {
		fmt.Fprintf(&b, " pushdown=%s", strings.Join(pushed, "+"))
	} else {
		b.WriteString(" pushdown=none")
	}
	if residual > 0 {
		fmt.Fprintf(&b, " residual_filters=%d", residual)
	}
	if st.PushdownFallbacks > 0 {
		fmt.Fprintf(&b, " fallbacks=%d", st.PushdownFallbacks)
	}
	if st.Router != "" {
		fmt.Fprintf(&b, " route=%s servers_contacted=%d", st.Router, st.Exec.ServersContacted)
		if st.Exec.PartitionsPruned > 0 {
			fmt.Fprintf(&b, " partitions_pruned=%d", st.Exec.PartitionsPruned)
		}
		if st.Exec.SegmentsPruned > 0 {
			fmt.Fprintf(&b, " segments_time_pruned=%d", st.Exec.SegmentsPruned)
		}
	}
	// Materialized-view decision comes first: a view hit answered ahead of
	// the result cache (no routing, no scan), optionally with the staleness
	// bound of a snapshot served mid-re-materialization.
	if st.Exec.ViewHit > 0 {
		b.WriteString(" view=hit")
		if st.Exec.ViewStalenessMs > 0 {
			fmt.Fprintf(&b, " view_staleness_ms=%d", st.Exec.ViewStalenessMs)
		}
	}
	// Result-cache decision: shown whenever the backend has a cache (its
	// resident bytes are reported even on a miss) — except on a view hit,
	// which answered before the cache was ever consulted.
	switch {
	case st.Exec.ViewHit > 0:
	case st.Exec.CacheHit > 0:
		b.WriteString(" cache=hit")
	case st.Exec.Coalesced > 0:
		b.WriteString(" cache=coalesced")
	case st.Exec.CacheMemBytes > 0:
		b.WriteString(" cache=miss")
	}
	if st.TrimK > 0 {
		fmt.Fprintf(&b, " trim=server k=%d", st.TrimK)
		if st.Exec.GroupsTrimmed > 0 {
			fmt.Fprintf(&b, " groups_trimmed=%d", st.Exec.GroupsTrimmed)
		}
	}
	fmt.Fprintf(&b, " rows_moved=%d", st.RowsReturned)
	if elapsed > 0 {
		fmt.Fprintf(&b, " time=%s", elapsed.Round(time.Microsecond))
	}
	return b.String()
}

// resolveJoin executes both sides concurrently (with their single-table
// predicates pushed toward the connectors) and hash-joins them. Running the
// sides in parallel lets each backend's own scatter-gather overlap — the
// end-to-end concurrency path for federated joins.
func (e *Engine) resolveJoin(ctx context.Context, j *sqlparse.JoinSpec, stmt *sqlparse.SelectStmt) (*relation, error) {
	leftStmt := &sqlparse.SelectStmt{
		Items: []sqlparse.SelectItem{{Star: true}},
		From:  j.Left,
		Where: predicatesFor(stmt.Where, j.Left.RefName(), false),
	}
	rightStmt := &sqlparse.SelectStmt{
		Items: []sqlparse.SelectItem{{Star: true}},
		From:  j.Right,
		Where: predicatesFor(stmt.Where, j.Right.RefName(), false),
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg                sync.WaitGroup
		leftRes, rightRes *Result
		leftErr, rightErr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		leftRes, leftErr = e.execute(ctx, leftStmt)
		if leftErr != nil {
			cancel() // abort the other side
		}
	}()
	go func() {
		defer wg.Done()
		rightRes, rightErr = e.execute(ctx, rightStmt)
		if rightErr != nil {
			cancel()
		}
	}()
	wg.Wait()
	// Prefer the side that actually failed: the other side usually reports
	// context.Canceled only because our cancel() aborted it.
	if leftErr != nil && !errors.Is(leftErr, context.Canceled) {
		return nil, leftErr
	}
	if rightErr != nil && !errors.Is(rightErr, context.Canceled) {
		return nil, rightErr
	}
	if leftErr != nil {
		return nil, leftErr
	}
	if rightErr != nil {
		return nil, rightErr
	}
	_, leftKey := sqlSplit(j.LeftCol)
	_, rightKey := sqlSplit(j.RightCol)
	leftRows := leftRes.Records()
	rightRows := rightRes.Records()
	// Build side: the smaller input.
	swap := len(rightRows) > len(leftRows)
	build, probe := rightRows, leftRows
	buildKey, probeKey := rightKey, leftKey
	buildName, probeName := j.Right.RefName(), j.Left.RefName()
	if swap {
		build, probe = leftRows, rightRows
		buildKey, probeKey = leftKey, rightKey
		buildName, probeName = j.Left.RefName(), j.Right.RefName()
	}
	ht := make(map[string][]record.Record, len(build))
	for _, r := range build {
		k := fmt.Sprintf("%v", r[buildKey])
		ht[k] = append(ht[k], r)
	}
	var joined []record.Record
	for _, pr := range probe {
		k := fmt.Sprintf("%v", pr[probeKey])
		for _, br := range ht[k] {
			out := make(record.Record, len(pr)+len(br))
			for c, v := range pr {
				out[c] = v
				out[probeName+"."+c] = v
			}
			for c, v := range br {
				if _, clash := out[c]; !clash {
					out[c] = v
				}
				out[buildName+"."+c] = v
			}
			joined = append(joined, out)
		}
	}
	stats := leftRes.Stats
	stats.Merge(rightRes.Stats)
	plan := append(append([]string(nil), leftRes.Plan...), rightRes.Plan...)
	// Residual: predicates with no side qualifier (must run post-join).
	var residual []sqlparse.Predicate
	for _, p := range stmt.Where {
		if p.Table == "" {
			residual = append(residual, p)
		}
	}
	return &relation{rows: joined, stats: stats, plan: plan, residual: residual}, nil
}

// predicatesFor selects WHERE conjuncts for a table ref. includeUnqualified
// adds predicates with no qualifier (single-table queries).
func predicatesFor(where []sqlparse.Predicate, refName string, includeUnqualified bool) []sqlparse.Predicate {
	var out []sqlparse.Predicate
	for _, p := range where {
		if p.Table == refName || (includeUnqualified && p.Table == "") {
			out = append(out, p)
		}
	}
	return out
}

func stripQualifiers(cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		_, out[i] = sqlSplit(c)
	}
	return out
}

func sqlSplit(col string) (table, column string) {
	if i := strings.IndexByte(col, '.'); i >= 0 {
		return col[:i], col[i+1:]
	}
	return "", col
}

// selectionColumns lists projected column names for pushdown (nil for *).
func selectionColumns(stmt *sqlparse.SelectStmt, refName string, residual []sqlparse.Predicate) []string {
	var cols []string
	for _, it := range stmt.Items {
		if it.Star {
			return nil
		}
		if it.Table == "" || it.Table == refName {
			cols = append(cols, it.Column)
		}
	}
	// WHERE/ORDER BY columns must survive the projection for residual work;
	// simplest correct choice: fetch all columns when any extra is needed.
	need := map[string]bool{}
	for _, c := range cols {
		need[c] = true
	}
	for _, o := range stmt.OrderBy {
		_, c := sqlSplit(o.Column)
		if !need[c] {
			return nil
		}
	}
	for _, p := range residual {
		if !need[p.Column] {
			return nil
		}
	}
	return cols
}

// filterRows applies residual predicates in the engine.
func filterRows(rows []record.Record, preds []sqlparse.Predicate) []record.Record {
	var out []record.Record
	for _, r := range rows {
		ok := true
		for _, p := range preds {
			if !rowSatisfies(r, p) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}

func rowSatisfies(r record.Record, p sqlparse.Predicate) bool {
	key := p.Column
	if p.Table != "" {
		if v, ok := r[p.Table+"."+p.Column]; ok {
			return literalCompare(v, p)
		}
	}
	v, ok := r[key]
	if !ok || v == nil {
		return false
	}
	return literalCompare(v, p)
}

// literalCompare evaluates one predicate against a row value using the
// shared record.Compare ordering (numeric coercion included), so engine-side
// residual filtering agrees exactly with pushed-down filtering.
func literalCompare(v any, p sqlparse.Predicate) bool {
	cmp := record.Compare(v, p.Value)
	switch p.Op {
	case sqlparse.CmpEq:
		return cmp == 0
	case sqlparse.CmpNe:
		return cmp != 0
	case sqlparse.CmpLt:
		return cmp < 0
	case sqlparse.CmpLe:
		return cmp <= 0
	case sqlparse.CmpGt:
		return cmp > 0
	case sqlparse.CmpGe:
		return cmp >= 0
	case sqlparse.CmpBetween:
		return cmp >= 0 && record.Compare(v, p.Value2) <= 0
	case sqlparse.CmpIn:
		for _, want := range p.Values {
			if record.Compare(v, want) == 0 {
				return true
			}
		}
		return false
	}
	return false
}

// aggregateRows runs engine-side hash aggregation.
func aggregateRows(rows []record.Record, stmt *sqlparse.SelectStmt) ([]record.Record, error) {
	type agg struct {
		count int64
		sum   float64
		min   float64
		max   float64
		seen  bool
	}
	type group struct {
		values map[string]any
		aggs   []agg
	}
	groupBy := stripQualifiers(stmt.GroupBy)
	groups := make(map[string]*group)
	var order []string
	for _, r := range rows {
		var kb strings.Builder
		for _, g := range stmt.GroupBy {
			fmt.Fprintf(&kb, "%v|", lookupColumn(r, g))
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &group{values: map[string]any{}, aggs: make([]agg, len(stmt.Items))}
			for i, gc := range stmt.GroupBy {
				g.values[groupBy[i]] = lookupColumn(r, gc)
			}
			groups[k] = g
			order = append(order, k)
		}
		for i, it := range stmt.Items {
			if it.Func == sqlparse.FuncNone {
				continue
			}
			a := &g.aggs[i]
			if it.Func == sqlparse.FuncCount && it.Column == "" {
				a.count++
				continue
			}
			v := lookupColumn(r, qualName(it.Table, it.Column))
			if v == nil {
				continue
			}
			if it.Func == sqlparse.FuncCount {
				a.count++
				continue
			}
			f, ok := record.ToFloat64(v)
			if !ok {
				// Match the OLAP layer's validation: SUM/AVG/MIN/MAX over
				// non-numeric values are rejected, never coerced to 0, so
				// the engine-side fallback stays equivalent to pushdown.
				return nil, fmt.Errorf("fedsql: %s over non-numeric value %T is not supported; use COUNT", it.OutputName(), v)
			}
			a.count++
			a.sum += f
			if !a.seen || f < a.min {
				a.min = f
			}
			if !a.seen || f > a.max {
				a.max = f
			}
			a.seen = true
		}
	}
	if len(groups) == 0 && len(stmt.GroupBy) == 0 {
		groups[""] = &group{values: map[string]any{}, aggs: make([]agg, len(stmt.Items))}
		order = append(order, "")
	}
	sort.Strings(order)
	var out []record.Record
	for _, k := range order {
		g := groups[k]
		rec := make(record.Record, len(stmt.Items))
		for c, v := range g.values {
			rec[c] = v
		}
		for i, it := range stmt.Items {
			if it.Func == sqlparse.FuncNone {
				continue
			}
			a := g.aggs[i]
			// SQL NULL semantics, matching the OLAP layer's aggValue:
			// MIN/MAX/AVG over zero non-null values are NULL, so the
			// engine-side fallback stays equivalent to pushdown.
			switch it.Func {
			case sqlparse.FuncCount:
				rec[it.OutputName()] = a.count
			case sqlparse.FuncSum:
				rec[it.OutputName()] = a.sum
			case sqlparse.FuncMin:
				if a.seen {
					rec[it.OutputName()] = a.min
				}
			case sqlparse.FuncMax:
				if a.seen {
					rec[it.OutputName()] = a.max
				}
			case sqlparse.FuncAvg:
				if a.count > 0 {
					rec[it.OutputName()] = a.sum / float64(a.count)
				}
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

func qualName(table, column string) string {
	if table != "" {
		return table + "." + column
	}
	return column
}

// lookupColumn resolves a possibly-qualified column in a row.
func lookupColumn(r record.Record, col string) any {
	if v, ok := r[col]; ok {
		return v
	}
	// Qualified name requested but row has unqualified (or vice versa).
	if t, c := sqlSplit(col); t != "" {
		if v, ok := r[c]; ok {
			return v
		}
	}
	return nil
}

// outputColumns derives the result column list.
func outputColumns(stmt *sqlparse.SelectStmt, rows []record.Record, rel *relation) ([]string, error) {
	var cols []string
	for _, it := range stmt.Items {
		if it.Star {
			if len(rel.cols) > 0 {
				cols = append(cols, rel.cols...)
				continue
			}
			// Derive from row keys (sorted, unqualified only).
			seen := map[string]bool{}
			for _, r := range rows {
				for k := range r {
					if !strings.Contains(k, ".") && !seen[k] {
						seen[k] = true
					}
				}
			}
			var names []string
			for k := range seen {
				names = append(names, k)
			}
			sort.Strings(names)
			cols = append(cols, names...)
			continue
		}
		if it.Func != sqlparse.FuncNone || it.Table == "" {
			cols = append(cols, it.OutputName())
		} else {
			// Qualified plain column: output name is column (or alias).
			if it.Alias != "" {
				cols = append(cols, it.Alias)
			} else {
				cols = append(cols, it.Table+"."+it.Column)
			}
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("fedsql: empty projection")
	}
	return cols, nil
}

// orderAndLimit applies ORDER BY / LIMIT on the final result.
func orderAndLimit(res *Result, stmt *sqlparse.SelectStmt) error {
	if len(stmt.OrderBy) > 0 {
		idx := make([]int, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			_, want := sqlSplit(o.Column)
			idx[i] = -1
			for ci, c := range res.Columns {
				_, cc := sqlSplit(c)
				if c == o.Column || cc == want {
					idx[i] = ci
					break
				}
			}
			if idx[i] < 0 {
				return fmt.Errorf("fedsql: ORDER BY column %q not in projection", o.Column)
			}
		}
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for i, o := range stmt.OrderBy {
				cmp := record.Compare(res.Rows[a][idx[i]], res.Rows[b][idx[i]])
				if cmp == 0 {
					continue
				}
				if o.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
	}
	if stmt.Limit > 0 && len(res.Rows) > stmt.Limit {
		res.Rows = res.Rows[:stmt.Limit]
	}
	return nil
}
