package fedsql

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/sqlparse"
)

// Result is a federated query result.
type Result struct {
	Columns []string
	Rows    [][]any
	// Stats aggregates connector-side and backend execution statistics.
	Stats QueryStats
	// Plan holds one line per table scan describing the pushdown and
	// routing decisions taken — the payload of sqlshell's EXPLAIN. When the
	// engine has a Tracer, each line also carries the scan's elapsed time.
	Plan []string
	// Trace is the finished span tree of this query when the engine has a
	// Tracer (fedsql.query → scan → broker.execute → ... down to
	// segment.scan) — the payload of sqlshell's EXPLAIN ANALYZE.
	Trace *obs.TraceSummary
}

// Records converts the result rows into records keyed by column name.
func (r *Result) Records() []record.Record {
	out := make([]record.Record, len(r.Rows))
	for i, row := range r.Rows {
		rec := make(record.Record, len(r.Columns))
		for ci, c := range r.Columns {
			if row[ci] != nil {
				rec[c] = row[ci]
			}
		}
		out[i] = rec
	}
	return out
}

// Engine is the federated query engine: it parses SQL, resolves tables
// through registered connectors, plans pushdown per connector capabilities,
// and executes the remainder (joins, subqueries, residual filters and
// aggregations) in memory with a hash-join + hash-aggregation executor.
type Engine struct {
	connectors map[string]Connector
	defaultCat string
	// Logf, when set, receives one diagnostic line per pushdown fallback
	// (an aggregate query a connector could not absorb). Fallbacks are
	// counted in QueryStats.PushdownFallbacks regardless. Logf is the
	// legacy compatibility sink: structured diagnostics flow through Log,
	// and each event is also formatted onto Logf so existing consumers
	// keep seeing one line per fallback.
	Logf func(format string, args ...any)
	// Log, when set, receives structured events (level + key/value fields)
	// for the same diagnostics Logf renders as text.
	Log *obs.Logger
	// Tracer, when set, opens a fedsql.query root span per query; connector
	// scans and the backend broker pipeline record child spans, and the
	// finished tree is attached to Result.Trace.
	Tracer *obs.Tracer
}

// event emits one structured diagnostic through the obs logger and renders
// the same fact onto the legacy Logf sink.
func (e *Engine) event(level obs.Level, msg string, legacy string, fields ...obs.Field) {
	switch level {
	case obs.LevelWarn:
		e.Log.Warn(msg, fields...)
	case obs.LevelError:
		e.Log.Error(msg, fields...)
	default:
		e.Log.Info(msg, fields...)
	}
	if e.Logf != nil {
		e.Logf("%s", legacy)
	}
}

// NewEngine creates an engine. The first registered connector becomes the
// default catalog for unqualified table names.
func NewEngine() *Engine {
	return &Engine{connectors: make(map[string]Connector)}
}

// Register adds a connector under its catalog name.
func (e *Engine) Register(c Connector) {
	if len(e.connectors) == 0 {
		e.defaultCat = c.Name()
	}
	e.connectors[c.Name()] = c
}

// SetDefaultCatalog changes the catalog used for unqualified table names.
func (e *Engine) SetDefaultCatalog(name string) error {
	if _, ok := e.connectors[name]; !ok {
		return fmt.Errorf("fedsql: unknown catalog %q", name)
	}
	e.defaultCat = name
	return nil
}

// Catalogs lists registered connector names, sorted.
func (e *Engine) Catalogs() []string {
	out := make([]string, 0, len(e.connectors))
	for n := range e.connectors {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Query parses and executes one SELECT with the background context.
func (e *Engine) Query(sql string) (*Result, error) {
	//lint:ignore ctxflow pre-PR-1 convenience entry point kept for callers with no context; QueryCtx is the cancellable API
	return e.QueryCtx(context.Background(), sql)
}

// QueryCtx parses and executes one SELECT under a caller context. The
// context flows through every connector Scan, so cancelling it aborts
// backend-side work (e.g. the OLAP broker's parallel scatter-gather) too.
func (e *Engine) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	// Trace wiring: own a fedsql.query root unless the caller's context
	// already carries a span (then the query nests under it and the owner
	// finishes the trace).
	var root obs.Span
	if e.Tracer != nil && !obs.SpanFromContext(ctx).Active() {
		root = e.Tracer.StartTrace("fedsql.query")
		ctx = obs.ContextWithSpan(ctx, root)
	}
	res, err := e.execute(ctx, stmt)
	if root.Active() {
		if err != nil {
			root.SetAttr("error", err.Error())
		} else {
			root.SetRows(int64(len(res.Rows)))
		}
		sum := e.Tracer.FinishTraceSummary(root)
		if err == nil {
			res.Trace = sum
		}
	}
	return res, err
}

// relation is an intermediate result: named rows plus the predicates the
// backend did not absorb. A relation with src != nil has not materialized
// yet — the consumer pulls batches from the iterator (and must complete or
// fail the scan, which closes the span and renders the plan line).
type relation struct {
	rows  []record.Record
	cols  []string // known column order (may be empty for star)
	stats QueryStats
	// plan collects one EXPLAIN line per table scan beneath this relation.
	plan []string
	// residual predicates still to be applied by the engine.
	residual []sqlparse.Predicate
	// aggregated marks that the connector already produced the final
	// aggregate rows, so the engine skips its own aggregation step.
	aggregated bool
	// ordered marks that ORDER BY/LIMIT already applied in the backend.
	ordered bool
	// src is the unconsumed batch iterator of a streaming table scan; rows
	// is empty until it is drained. The path that consumes it owns Close.
	src RowIterator
	// meta carries the deferred plan-line/span context of the src scan —
	// rendered only at completeScan, when stats are finally known.
	meta *scanMeta
}

// scanMeta is the deferred EXPLAIN/tracing context of one streaming scan.
type scanMeta struct {
	catalog, table, kind string
	residual             int
	span                 obs.Span
	start                time.Time
	// fallback marks an aggregate query that fell back to row scan +
	// engine-side aggregation; counted once the scan completes.
	fallback bool
}

// completeScan finalizes a streaming scan after its iterator was drained:
// folds the iterator's end-of-stream stats into the relation, renders the
// plan line, and ends the scan span.
func (rel *relation) completeScan() {
	if rel.meta == nil || rel.src == nil {
		return
	}
	st := rel.src.Stats()
	if rel.meta.fallback {
		st.PushdownFallbacks++
	}
	rel.stats = st
	rel.plan = []string{planLine(rel.meta.catalog, rel.meta.table, rel.meta.kind, st, rel.meta.residual, time.Since(rel.meta.start))}
	if rel.meta.span.Active() {
		rel.meta.span.SetRows(st.RowsReturned)
		rel.meta.span.End()
	}
	rel.meta = nil
}

// failScan ends a streaming scan's span with the error that aborted it.
func (rel *relation) failScan(err error) {
	if rel.meta == nil {
		return
	}
	if rel.meta.span.Active() {
		rel.meta.span.SetAttr("error", err.Error())
		rel.meta.span.End()
	}
	rel.meta = nil
}

func (e *Engine) execute(ctx context.Context, stmt *sqlparse.SelectStmt) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if stmt.From == nil {
		return nil, fmt.Errorf("fedsql: SELECT without FROM is not supported")
	}
	if stmt.Window != nil {
		return nil, fmt.Errorf("fedsql: window functions belong to the streaming SQL layer (flinksql)")
	}
	rel, err := e.resolveFrom(ctx, stmt)
	if err != nil {
		return nil, err
	}
	if rel.src != nil {
		// Streaming table scan: consume batch-at-a-time instead of
		// materializing the scan into records first.
		return e.consumeSource(ctx, rel, stmt)
	}
	rows := rel.rows

	// Residual filters (anything not pushed down was left in rel by
	// resolveFrom via the returned residual list — here rel carries rows
	// already filtered when pushdown happened).
	if !rel.aggregated {
		if len(rel.residual) > 0 {
			rows = filterRows(rows, rel.residual)
		}
		if stmt.HasAggregates() {
			rows, err = aggregateRows(rows, stmt)
			if err != nil {
				return nil, err
			}
		}
	}

	cols, err := outputColumns(stmt, rows, rel)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols, Stats: rel.stats, Plan: rel.plan}
	for _, r := range rows {
		row := make([]any, len(cols))
		for ci, c := range cols {
			row[ci] = lookupColumn(r, c)
		}
		res.Rows = append(res.Rows, row)
	}
	if !rel.ordered {
		if err := orderAndLimit(res, stmt); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// consumeSource executes a single-table query over a streaming scan: the
// iterator's batches flow through residual filtering straight into either
// the engine aggregator or the result rows, so the engine never holds the
// scan as a []record.Record. Unordered LIMIT queries stop pulling (and
// close the backend scan) as soon as the limit is met.
func (e *Engine) consumeSource(ctx context.Context, rel *relation, stmt *sqlparse.SelectStmt) (*Result, error) {
	it := rel.src
	defer it.Close()
	if stmt.HasAggregates() {
		return e.consumeAggregate(ctx, rel, stmt)
	}
	cols, err := outputColumns(stmt, nil, rel)
	if err != nil {
		rel.failScan(err)
		return nil, err
	}
	res := &Result{Columns: cols}
	// Unordered LIMIT: any stmt.Limit rows are a correct answer, so stop
	// pulling once collected — the backend scan is cancelled via Close.
	earlyStop := !rel.ordered && len(stmt.OrderBy) == 0 && stmt.Limit > 0
	var idx []int
scan:
	for {
		b, err := it.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			rel.failScan(err)
			return nil, err
		}
		if idx == nil {
			idx = batchColumnIndexes(b.Columns, cols)
		}
		for r := 0; r < b.Len; r++ {
			if len(rel.residual) > 0 && !recordSatisfies(b.Record(r), rel.residual) {
				continue
			}
			row := make([]any, len(cols))
			for ci, bi := range idx {
				if bi >= 0 {
					row[ci] = b.Cols[bi][r]
				}
			}
			res.Rows = append(res.Rows, row)
			if earlyStop && len(res.Rows) >= stmt.Limit {
				break scan
			}
		}
	}
	rel.completeScan()
	res.Stats = rel.stats
	res.Plan = rel.plan
	if !rel.ordered {
		if err := orderAndLimit(res, stmt); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// consumeAggregate folds a streaming scan into the engine's hash
// aggregator batch-at-a-time — the peak engine footprint is one batch plus
// the group table, not the scanned rows (the E24 measurement).
func (e *Engine) consumeAggregate(ctx context.Context, rel *relation, stmt *sqlparse.SelectStmt) (*Result, error) {
	it := rel.src
	// Output columns derive from the aggregate rows, not the scan.
	rel.cols = nil
	agg := newEngineAggregator(stmt)
	for {
		b, err := it.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			rel.failScan(err)
			return nil, err
		}
		for r := 0; r < b.Len; r++ {
			rec := b.Record(r)
			if len(rel.residual) > 0 && !recordSatisfies(rec, rel.residual) {
				continue
			}
			if err := agg.add(rec); err != nil {
				rel.failScan(err)
				return nil, err
			}
		}
	}
	rel.completeScan()
	rows := agg.result()
	cols, err := outputColumns(stmt, rows, rel)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols, Stats: rel.stats, Plan: rel.plan}
	for _, r := range rows {
		row := make([]any, len(cols))
		for ci, c := range cols {
			row[ci] = lookupColumn(r, c)
		}
		res.Rows = append(res.Rows, row)
	}
	if !rel.ordered {
		if err := orderAndLimit(res, stmt); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// recordSatisfies applies every residual predicate to one record.
func recordSatisfies(r record.Record, preds []sqlparse.Predicate) bool {
	for _, p := range preds {
		if !rowSatisfies(r, p) {
			return false
		}
	}
	return true
}

// batchColumnIndexes maps each output column to its batch column (-1 when
// absent → NULL), with lookupColumn's qualified-name fallback semantics.
func batchColumnIndexes(bcols, out []string) []int {
	idx := make([]int, len(out))
	for oi, col := range out {
		idx[oi] = -1
		for bi, bc := range bcols {
			if bc == col {
				idx[oi] = bi
				break
			}
		}
		if idx[oi] >= 0 {
			continue
		}
		if _, c := sqlSplit(col); c != col {
			for bi, bc := range bcols {
				if bc == c {
					idx[oi] = bi
					break
				}
			}
		}
	}
	return idx
}

// resolveFrom evaluates the FROM clause (table / subquery / join) and
// returns rows plus any predicates the backend did not absorb.
func (e *Engine) resolveFrom(ctx context.Context, stmt *sqlparse.SelectStmt) (*relation, error) {
	return e.resolveRef(ctx, stmt.From, stmt)
}

func (e *Engine) resolveRef(ctx context.Context, ref *sqlparse.TableRef, stmt *sqlparse.SelectStmt) (*relation, error) {
	switch {
	case ref.Join != nil:
		return e.resolveJoin(ctx, ref.Join, stmt)
	case ref.Sub != nil:
		sub, err := e.execute(ctx, ref.Sub)
		if err != nil {
			return nil, err
		}
		rel := &relation{rows: sub.Records(), cols: sub.Columns, stats: sub.Stats, plan: sub.Plan}
		// Outer predicates apply in the engine.
		rel.residual = predicatesFor(stmt.Where, ref.RefName(), true)
		return rel, nil
	default:
		return e.scanTable(ctx, ref, stmt)
	}
}

// scanTable plans pushdown for a single-table query: aggregate queries go
// through AggregateScan when the connector declares the needed fragments,
// falling back to row scan + engine-side aggregation otherwise (counted in
// QueryStats.PushdownFallbacks); plain selections go through Scan with
// filter/projection/order/limit pushdown per capability.
func (e *Engine) scanTable(ctx context.Context, ref *sqlparse.TableRef, stmt *sqlparse.SelectStmt) (*relation, error) {
	catalog := ref.Qualifier
	if catalog == "" {
		catalog = e.defaultCat
	}
	conn, ok := e.connectors[catalog]
	if !ok {
		return nil, fmt.Errorf("fedsql: unknown catalog %q", catalog)
	}
	caps := conn.Capabilities()
	var pushFilters []sqlparse.Predicate
	var residual []sqlparse.Predicate

	mine := predicatesFor(stmt.Where, ref.RefName(), true)
	if caps.Filters {
		for _, p := range mine {
			cp := p
			cp.Table = ""
			pushFilters = append(pushFilters, cp)
		}
	} else {
		residual = mine
	}

	isJoinless := stmt.From == ref
	if isJoinless && stmt.HasAggregates() && stmt.Window == nil {
		// Aggregate pushdown: the whole aggregate query executes inside the
		// backend when the connector declares the needed fragments and
		// every filter was absorbed — only per-group aggregate rows cross
		// the connector boundary then, never raw rows.
		if caps.Aggregations && len(residual) == 0 && (len(stmt.GroupBy) == 0 || caps.GroupBy) {
			aq := AggregateQuery{Filters: pushFilters, GroupBy: stripQualifiers(stmt.GroupBy)}
			for _, it := range stmt.Items {
				if it.Func == sqlparse.FuncNone {
					continue // plain group-by columns come back via GroupBy
				}
				item := it
				item.Table = ""
				aq.Aggs = append(aq.Aggs, item)
			}
			if caps.OrderBy {
				aq.OrderBy = append(aq.OrderBy, stmt.OrderBy...)
			}
			if caps.Limit && (len(stmt.OrderBy) == 0 || len(aq.OrderBy) > 0) {
				aq.Limit = stmt.Limit
			}
			sp, sctx := scanSpan(ctx, catalog, ref.Name, "aggregate-scan")
			scanStart := time.Now()
			it, err := openAggregateScan(sctx, conn, ref.Name, aq)
			var rows []record.Record
			var stats QueryStats
			if err == nil {
				// Aggregate results are per-group rows — small by
				// construction — so the v3 iterator is drained eagerly.
				rows, stats, err = drainIterator(sctx, it)
			}
			elapsed := time.Since(scanStart)
			endScanSpan(sp, rows, err)
			if err == nil {
				return &relation{
					rows:       rows,
					stats:      stats,
					plan:       []string{planLine(catalog, ref.Name, "aggregate-scan", stats, 0, elapsed)},
					aggregated: true,
					ordered:    aq.Limit > 0 || len(aq.OrderBy) > 0,
				}, nil
			}
			if !errors.Is(err, ErrPushdownUnsupported) {
				return nil, err
			}
			// A capable-looking connector refused: fall through to the
			// row-scan fallback below.
		}
		// Fallback: stream rows (with whatever filter pushdown the backend
		// offers) and aggregate in the engine, batch-at-a-time.
		e.event(obs.LevelWarn, "pushdown fallback",
			fmt.Sprintf("fedsql: aggregate pushdown fallback for %s.%s (connector capabilities %+v)", catalog, ref.Name, caps),
			obs.F("catalog", catalog), obs.F("table", ref.Name),
			obs.F("fragment", "aggregate"), obs.F("capabilities", fmt.Sprintf("%+v", caps)))
		return e.openScanRelation(ctx, conn, catalog, ref.Name, "row-scan+engine-agg",
			Pushdown{Filters: pushFilters}, residual, false, true)
	}

	// Projection pushdown for plain selections.
	pd := Pushdown{Filters: pushFilters}
	if !stmt.HasAggregates() && isJoinless {
		pd.Columns = selectionColumns(stmt, ref.RefName(), residual)
		if len(residual) == 0 {
			if caps.OrderBy {
				pd.OrderBy = append(pd.OrderBy, stmt.OrderBy...)
			}
			if caps.Limit && (len(stmt.OrderBy) == 0 || len(pd.OrderBy) > 0) {
				pd.Limit = stmt.Limit
			}
		}
	}
	// ordered marks ORDER BY and LIMIT as fully applied in the backend, so
	// the engine's own orderAndLimit pass can be skipped.
	ordered := (len(stmt.OrderBy) == 0 || len(pd.OrderBy) > 0) &&
		(stmt.Limit == 0 || pd.Limit > 0) &&
		(len(pd.OrderBy) > 0 || pd.Limit > 0)
	return e.openScanRelation(ctx, conn, catalog, ref.Name, "row-scan", pd, residual, ordered, false)
}

// openScanRelation opens a v3 row-scan iterator and wraps it as an
// unconsumed streaming relation. The plan line and span close when the
// consumer drains the iterator (completeScan) — stats exist only then.
func (e *Engine) openScanRelation(ctx context.Context, conn Connector, catalog, table, kind string, pd Pushdown, residual []sqlparse.Predicate, ordered, fallback bool) (*relation, error) {
	sp, sctx := scanSpan(ctx, catalog, table, kind)
	start := time.Now()
	it, err := openScan(sctx, conn, table, pd)
	if err != nil {
		endScanSpan(sp, nil, err)
		return nil, err
	}
	rel := &relation{
		src:      it,
		residual: residual,
		ordered:  ordered,
		meta: &scanMeta{
			catalog: catalog, table: table, kind: kind,
			residual: len(residual), span: sp, start: start, fallback: fallback,
		},
	}
	// Star projections need a column order before rows exist: the sorted
	// iterator columns — identical to the legacy sorted-record-keys order
	// for any column with at least one non-NULL value.
	cols := append([]string(nil), it.Columns()...)
	sort.Strings(cols)
	rel.cols = cols
	return rel, nil
}

// scanSpan opens the scan child span for one connector call (no-op without
// a trace in ctx).
func scanSpan(ctx context.Context, catalog, table, kind string) (obs.Span, context.Context) {
	sp, sctx := obs.StartSpan(ctx, "scan")
	if sp.Active() {
		sp.SetAttr("catalog", catalog)
		sp.SetAttr("table", table)
		sp.SetAttr("kind", kind)
	}
	return sp, sctx
}

func endScanSpan(sp obs.Span, rows []record.Record, err error) {
	if !sp.Active() {
		return
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
	} else {
		sp.SetRows(int64(len(rows)))
	}
	sp.End()
}

// planLine renders one EXPLAIN line describing a table scan's pushdown and
// routing decisions, plus the scan's elapsed wall time.
func planLine(catalog, table, kind string, st QueryStats, residual int, elapsed time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan %s.%s [%s]", catalog, table, kind)
	var pushed []string
	if st.PushedFilters {
		pushed = append(pushed, "filters")
	}
	if st.PushedAggs {
		pushed = append(pushed, "aggs")
	}
	if st.PushedLimit {
		pushed = append(pushed, "limit")
	}
	if len(pushed) > 0 {
		fmt.Fprintf(&b, " pushdown=%s", strings.Join(pushed, "+"))
	} else {
		b.WriteString(" pushdown=none")
	}
	// Execution transport across the connector boundary: a pull-based batch
	// stream (Connector v3 OpenScan) or one materialized slice.
	if st.Streamed {
		fmt.Fprintf(&b, " exec=streaming batch=%d", BatchRows)
	} else {
		b.WriteString(" exec=materialized")
	}
	if residual > 0 {
		fmt.Fprintf(&b, " residual_filters=%d", residual)
	}
	if st.PushdownFallbacks > 0 {
		fmt.Fprintf(&b, " fallbacks=%d", st.PushdownFallbacks)
	}
	if st.Router != "" {
		fmt.Fprintf(&b, " route=%s servers_contacted=%d", st.Router, st.Exec.ServersContacted)
		if st.Exec.PartitionsPruned > 0 {
			fmt.Fprintf(&b, " partitions_pruned=%d", st.Exec.PartitionsPruned)
		}
		if st.Exec.SegmentsPruned > 0 {
			fmt.Fprintf(&b, " segments_time_pruned=%d", st.Exec.SegmentsPruned)
		}
	}
	// Materialized-view decision comes first: a view hit answered ahead of
	// the result cache (no routing, no scan), optionally with the staleness
	// bound of a snapshot served mid-re-materialization.
	if st.Exec.ViewHit > 0 {
		b.WriteString(" view=hit")
		if st.Exec.ViewStalenessMs > 0 {
			fmt.Fprintf(&b, " view_staleness_ms=%d", st.Exec.ViewStalenessMs)
		}
	}
	// Result-cache decision: shown whenever the backend has a cache (its
	// resident bytes are reported even on a miss) — except on a view hit,
	// which answered before the cache was ever consulted.
	switch {
	case st.Exec.ViewHit > 0:
	case st.Exec.CacheHit > 0:
		b.WriteString(" cache=hit")
	case st.Exec.Coalesced > 0:
		b.WriteString(" cache=coalesced")
	case st.Exec.CacheMemBytes > 0:
		b.WriteString(" cache=miss")
	}
	if st.TrimK > 0 {
		fmt.Fprintf(&b, " trim=server k=%d", st.TrimK)
		if st.Exec.GroupsTrimmed > 0 {
			fmt.Fprintf(&b, " groups_trimmed=%d", st.Exec.GroupsTrimmed)
		}
	}
	fmt.Fprintf(&b, " rows_moved=%d", st.RowsReturned)
	if elapsed > 0 {
		fmt.Fprintf(&b, " time=%s", elapsed.Round(time.Microsecond))
	}
	return b.String()
}

// resolveJoin hash-joins the two sides: the right side is the build side
// (materialized into the hash table, concurrently with opening the left
// side so both backends' scatter-gathers overlap), and the left side is
// the probe side, consumed batch-at-a-time when its scan streams — probe
// rows flow through the join as they arrive and are never held as a
// materialized input slice.
func (e *Engine) resolveJoin(ctx context.Context, j *sqlparse.JoinSpec, stmt *sqlparse.SelectStmt) (*relation, error) {
	leftStmt := &sqlparse.SelectStmt{
		Items: []sqlparse.SelectItem{{Star: true}},
		From:  j.Left,
		Where: predicatesFor(stmt.Where, j.Left.RefName(), false),
	}
	rightStmt := &sqlparse.SelectStmt{
		Items: []sqlparse.SelectItem{{Star: true}},
		From:  j.Right,
		Where: predicatesFor(stmt.Where, j.Right.RefName(), false),
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		buildRes *Result
		buildErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		buildRes, buildErr = e.execute(ctx, rightStmt)
		if buildErr != nil {
			cancel() // abort the probe side
		}
	}()
	// Opening the probe side starts its backend scan immediately; batches
	// buffer in the stream while the build side materializes.
	probeRel, probeErr := e.resolveRef(ctx, j.Left, leftStmt)
	if probeErr != nil {
		cancel()
	}
	wg.Wait()
	if probeErr == nil && probeRel.src != nil {
		defer probeRel.src.Close()
	}
	// Prefer the side that actually failed: the other side usually reports
	// context.Canceled only because our cancel() aborted it.
	if buildErr != nil && !errors.Is(buildErr, context.Canceled) {
		if probeErr == nil {
			probeRel.failScan(buildErr)
		}
		return nil, buildErr
	}
	if probeErr != nil && !errors.Is(probeErr, context.Canceled) {
		return nil, probeErr
	}
	if buildErr != nil {
		return nil, buildErr
	}
	if probeErr != nil {
		return nil, probeErr
	}
	_, probeKey := sqlSplit(j.LeftCol)
	_, buildKey := sqlSplit(j.RightCol)
	probeName, buildName := j.Left.RefName(), j.Right.RefName()
	build := buildRes.Records()
	ht := make(map[string][]record.Record, len(build))
	for _, r := range build {
		k := fmt.Sprintf("%v", r[buildKey])
		ht[k] = append(ht[k], r)
	}
	var joined []record.Record
	probeRow := func(pr record.Record) {
		k := fmt.Sprintf("%v", pr[probeKey])
		for _, br := range ht[k] {
			out := make(record.Record, len(pr)+len(br))
			for c, v := range pr {
				out[c] = v
				out[probeName+"."+c] = v
			}
			for c, v := range br {
				if _, clash := out[c]; !clash {
					out[c] = v
				}
				out[buildName+"."+c] = v
			}
			joined = append(joined, out)
		}
	}
	if probeRel.src != nil {
		for {
			b, err := probeRel.src.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				probeRel.failScan(err)
				return nil, err
			}
			for r := 0; r < b.Len; r++ {
				rec := b.Record(r)
				if len(probeRel.residual) > 0 && !recordSatisfies(rec, probeRel.residual) {
					continue
				}
				probeRow(rec)
			}
		}
		probeRel.completeScan()
	} else {
		rows := probeRel.rows
		if len(probeRel.residual) > 0 {
			rows = filterRows(rows, probeRel.residual)
		}
		for _, pr := range rows {
			probeRow(pr)
		}
	}
	stats := probeRel.stats
	stats.Merge(buildRes.Stats)
	plan := append(append([]string(nil), probeRel.plan...), buildRes.Plan...)
	// Residual: predicates with no side qualifier (must run post-join).
	var residual []sqlparse.Predicate
	for _, p := range stmt.Where {
		if p.Table == "" {
			residual = append(residual, p)
		}
	}
	return &relation{rows: joined, stats: stats, plan: plan, residual: residual}, nil
}

// predicatesFor selects WHERE conjuncts for a table ref. includeUnqualified
// adds predicates with no qualifier (single-table queries).
func predicatesFor(where []sqlparse.Predicate, refName string, includeUnqualified bool) []sqlparse.Predicate {
	var out []sqlparse.Predicate
	for _, p := range where {
		if p.Table == refName || (includeUnqualified && p.Table == "") {
			out = append(out, p)
		}
	}
	return out
}

func stripQualifiers(cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		_, out[i] = sqlSplit(c)
	}
	return out
}

func sqlSplit(col string) (table, column string) {
	if i := strings.IndexByte(col, '.'); i >= 0 {
		return col[:i], col[i+1:]
	}
	return "", col
}

// selectionColumns lists projected column names for pushdown (nil for *).
func selectionColumns(stmt *sqlparse.SelectStmt, refName string, residual []sqlparse.Predicate) []string {
	var cols []string
	for _, it := range stmt.Items {
		if it.Star {
			return nil
		}
		if it.Table == "" || it.Table == refName {
			cols = append(cols, it.Column)
		}
	}
	// WHERE/ORDER BY columns must survive the projection for residual work;
	// simplest correct choice: fetch all columns when any extra is needed.
	need := map[string]bool{}
	for _, c := range cols {
		need[c] = true
	}
	for _, o := range stmt.OrderBy {
		_, c := sqlSplit(o.Column)
		if !need[c] {
			return nil
		}
	}
	for _, p := range residual {
		if !need[p.Column] {
			return nil
		}
	}
	return cols
}

// filterRows applies residual predicates in the engine.
func filterRows(rows []record.Record, preds []sqlparse.Predicate) []record.Record {
	var out []record.Record
	for _, r := range rows {
		ok := true
		for _, p := range preds {
			if !rowSatisfies(r, p) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}

func rowSatisfies(r record.Record, p sqlparse.Predicate) bool {
	key := p.Column
	if p.Table != "" {
		if v, ok := r[p.Table+"."+p.Column]; ok {
			return literalCompare(v, p)
		}
	}
	v, ok := r[key]
	if !ok || v == nil {
		return false
	}
	return literalCompare(v, p)
}

// literalCompare evaluates one predicate against a row value using the
// shared record.Compare ordering (numeric coercion included), so engine-side
// residual filtering agrees exactly with pushed-down filtering.
func literalCompare(v any, p sqlparse.Predicate) bool {
	cmp := record.Compare(v, p.Value)
	switch p.Op {
	case sqlparse.CmpEq:
		return cmp == 0
	case sqlparse.CmpNe:
		return cmp != 0
	case sqlparse.CmpLt:
		return cmp < 0
	case sqlparse.CmpLe:
		return cmp <= 0
	case sqlparse.CmpGt:
		return cmp > 0
	case sqlparse.CmpGe:
		return cmp >= 0
	case sqlparse.CmpBetween:
		return cmp >= 0 && record.Compare(v, p.Value2) <= 0
	case sqlparse.CmpIn:
		for _, want := range p.Values {
			if record.Compare(v, want) == 0 {
				return true
			}
		}
		return false
	}
	return false
}

// engineAggregator is the engine-side hash aggregation, fed one record at
// a time so streaming scans fold into it batch-by-batch without ever
// materializing their input. aggregateRows wraps it for materialized
// inputs — one implementation, so both paths are identical by
// construction.
type engineAggregator struct {
	stmt    *sqlparse.SelectStmt
	groupBy []string
	groups  map[string]*engineAggGroup
	order   []string
}

type engineAggState struct {
	count int64
	sum   float64
	min   float64
	max   float64
	seen  bool
}

type engineAggGroup struct {
	values map[string]any
	aggs   []engineAggState
}

func newEngineAggregator(stmt *sqlparse.SelectStmt) *engineAggregator {
	return &engineAggregator{
		stmt:    stmt,
		groupBy: stripQualifiers(stmt.GroupBy),
		groups:  make(map[string]*engineAggGroup),
	}
}

// add folds one input record into its group's accumulators.
func (a *engineAggregator) add(r record.Record) error {
	var kb strings.Builder
	for _, g := range a.stmt.GroupBy {
		fmt.Fprintf(&kb, "%v|", lookupColumn(r, g))
	}
	k := kb.String()
	g, ok := a.groups[k]
	if !ok {
		g = &engineAggGroup{values: map[string]any{}, aggs: make([]engineAggState, len(a.stmt.Items))}
		for i, gc := range a.stmt.GroupBy {
			g.values[a.groupBy[i]] = lookupColumn(r, gc)
		}
		a.groups[k] = g
		a.order = append(a.order, k)
	}
	for i, it := range a.stmt.Items {
		if it.Func == sqlparse.FuncNone {
			continue
		}
		st := &g.aggs[i]
		if it.Func == sqlparse.FuncCount && it.Column == "" {
			st.count++
			continue
		}
		v := lookupColumn(r, qualName(it.Table, it.Column))
		if v == nil {
			continue
		}
		if it.Func == sqlparse.FuncCount {
			st.count++
			continue
		}
		f, ok := record.ToFloat64(v)
		if !ok {
			// Match the OLAP layer's validation: SUM/AVG/MIN/MAX over
			// non-numeric values are rejected, never coerced to 0, so
			// the engine-side fallback stays equivalent to pushdown.
			return fmt.Errorf("fedsql: %s over non-numeric value %T is not supported; use COUNT", it.OutputName(), v)
		}
		st.count++
		st.sum += f
		if !st.seen || f < st.min {
			st.min = f
		}
		if !st.seen || f > st.max {
			st.max = f
		}
		st.seen = true
	}
	return nil
}

// result finalizes the groups into output records, key-sorted.
func (a *engineAggregator) result() []record.Record {
	if len(a.groups) == 0 && len(a.stmt.GroupBy) == 0 {
		a.groups[""] = &engineAggGroup{values: map[string]any{}, aggs: make([]engineAggState, len(a.stmt.Items))}
		a.order = append(a.order, "")
	}
	sort.Strings(a.order)
	var out []record.Record
	for _, k := range a.order {
		g := a.groups[k]
		rec := make(record.Record, len(a.stmt.Items))
		for c, v := range g.values {
			rec[c] = v
		}
		for i, it := range a.stmt.Items {
			if it.Func == sqlparse.FuncNone {
				continue
			}
			st := g.aggs[i]
			// SQL NULL semantics, matching the OLAP layer's aggValue:
			// MIN/MAX/AVG over zero non-null values are NULL, so the
			// engine-side fallback stays equivalent to pushdown.
			switch it.Func {
			case sqlparse.FuncCount:
				rec[it.OutputName()] = st.count
			case sqlparse.FuncSum:
				rec[it.OutputName()] = st.sum
			case sqlparse.FuncMin:
				if st.seen {
					rec[it.OutputName()] = st.min
				}
			case sqlparse.FuncMax:
				if st.seen {
					rec[it.OutputName()] = st.max
				}
			case sqlparse.FuncAvg:
				if st.count > 0 {
					rec[it.OutputName()] = st.sum / float64(st.count)
				}
			}
		}
		out = append(out, rec)
	}
	return out
}

// aggregateRows runs engine-side hash aggregation over a materialized
// input (joins, subqueries).
func aggregateRows(rows []record.Record, stmt *sqlparse.SelectStmt) ([]record.Record, error) {
	a := newEngineAggregator(stmt)
	for _, r := range rows {
		if err := a.add(r); err != nil {
			return nil, err
		}
	}
	return a.result(), nil
}

func qualName(table, column string) string {
	if table != "" {
		return table + "." + column
	}
	return column
}

// lookupColumn resolves a possibly-qualified column in a row.
func lookupColumn(r record.Record, col string) any {
	if v, ok := r[col]; ok {
		return v
	}
	// Qualified name requested but row has unqualified (or vice versa).
	if t, c := sqlSplit(col); t != "" {
		if v, ok := r[c]; ok {
			return v
		}
	}
	return nil
}

// outputColumns derives the result column list.
func outputColumns(stmt *sqlparse.SelectStmt, rows []record.Record, rel *relation) ([]string, error) {
	var cols []string
	for _, it := range stmt.Items {
		if it.Star {
			if len(rel.cols) > 0 {
				cols = append(cols, rel.cols...)
				continue
			}
			// Derive from row keys (sorted, unqualified only).
			seen := map[string]bool{}
			for _, r := range rows {
				for k := range r {
					if !strings.Contains(k, ".") && !seen[k] {
						seen[k] = true
					}
				}
			}
			var names []string
			for k := range seen {
				names = append(names, k)
			}
			sort.Strings(names)
			cols = append(cols, names...)
			continue
		}
		if it.Func != sqlparse.FuncNone || it.Table == "" {
			cols = append(cols, it.OutputName())
		} else {
			// Qualified plain column: output name is column (or alias).
			if it.Alias != "" {
				cols = append(cols, it.Alias)
			} else {
				cols = append(cols, it.Table+"."+it.Column)
			}
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("fedsql: empty projection")
	}
	return cols, nil
}

// orderAndLimit applies ORDER BY / LIMIT on the final result.
func orderAndLimit(res *Result, stmt *sqlparse.SelectStmt) error {
	if len(stmt.OrderBy) > 0 {
		idx := make([]int, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			_, want := sqlSplit(o.Column)
			idx[i] = -1
			for ci, c := range res.Columns {
				_, cc := sqlSplit(c)
				if c == o.Column || cc == want {
					idx[i] = ci
					break
				}
			}
			if idx[i] < 0 {
				return fmt.Errorf("fedsql: ORDER BY column %q not in projection", o.Column)
			}
		}
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for i, o := range stmt.OrderBy {
				cmp := record.Compare(res.Rows[a][idx[i]], res.Rows[b][idx[i]])
				if cmp == 0 {
					continue
				}
				if o.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
	}
	if stmt.Limit > 0 && len(res.Rows) > stmt.Limit {
		res.Rows = res.Rows[:stmt.Limit]
	}
	return nil
}
