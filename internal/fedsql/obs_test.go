package fedsql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestFallbackEventStructured asserts the pushdown-fallback diagnostic flows
// through the obs logger as a structured event carrying the fragment name,
// while the legacy Logf sink keeps receiving exactly one formatted line.
func TestFallbackEventStructured(t *testing.T) {
	e, _ := setupEngine(t, 200)
	e.Log = obs.NewLogger(obs.LevelDebug, 16, nil)
	var lines []string
	e.Logf = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	// The archive connector declares no aggregation capability, so this
	// aggregate falls back to row scan + engine-side aggregation.
	if _, err := e.Query("SELECT city, COUNT(*) FROM hive.orders GROUP BY city"); err != nil {
		t.Fatal(err)
	}
	events := e.Log.Recent()
	if len(events) != 1 {
		t.Fatalf("obs logger got %d events, want 1: %+v", len(events), events)
	}
	ev := events[0]
	if ev.Level != obs.LevelWarn || ev.Msg != "pushdown fallback" {
		t.Fatalf("event = %+v", ev)
	}
	if got := ev.Field("fragment"); got != "aggregate" {
		t.Fatalf("fragment field = %v, want aggregate", got)
	}
	if got := ev.Field("catalog"); got != "hive" {
		t.Fatalf("catalog field = %v, want hive", got)
	}
	if got := ev.Field("table"); got != "orders" {
		t.Fatalf("table field = %v, want orders", got)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "fallback") {
		t.Fatalf("legacy Logf sink got %v, want one fallback line", lines)
	}
}

// TestQueryTraceAttached asserts a traced federated query attaches the full
// span tree to Result.Trace: fedsql.query → scan (with catalog/table attrs)
// → broker.execute → server.scan → segment.scan for the pinot side.
func TestQueryTraceAttached(t *testing.T) {
	e, _ := setupEngine(t, 200)
	e.Tracer = obs.NewTracer(obs.TracerConfig{Recent: 8})
	res, err := e.Query("SELECT city, SUM(amount) FROM pinot.orders GROUP BY city")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Result.Trace not attached")
	}
	if res.Trace.Name != "fedsql.query" {
		t.Fatalf("root span = %q, want fedsql.query", res.Trace.Name)
	}
	for _, name := range []string{"scan", "broker.execute", "server.scan", "segment.scan", "merge", "finalize"} {
		if res.Trace.Find(name) == nil {
			t.Errorf("trace missing span %q:\n%s", name, res.Trace.Render())
		}
	}
	scan := res.Trace.Find("scan")
	var tableAttr string
	for _, a := range scan.Attrs {
		if a.Key == "table" {
			tableAttr = a.Value
		}
	}
	if tableAttr != "orders" {
		t.Fatalf("scan table attr = %q, want orders:\n%s", tableAttr, res.Trace.Render())
	}
	// The broker span must nest under the scan span: one trace spans both
	// layers end to end.
	be := res.Trace.Find("broker.execute")
	if res.Trace.Spans[be.Parent].Name != "scan" {
		t.Fatalf("broker.execute parent = %q, want scan:\n%s", res.Trace.Spans[be.Parent].Name, res.Trace.Render())
	}
	// Plan lines carry per-stage timings when traced.
	if len(res.Plan) != 1 || !strings.Contains(res.Plan[0], " time=") {
		t.Fatalf("plan %v should carry scan timing", res.Plan)
	}
}
