package fedsql

import (
	"context"
	"strings"
	"testing"

	"repro/internal/objstore"
	"repro/internal/olap"
	"repro/internal/olap/matview"
	"repro/internal/sqlparse"
)

// TestViewServedFederatedQueryUnderIngest: a registered aggregate fragment
// is served from its materialized view through the SQL layer (EXPLAIN's
// view=hit), keeps hitting under sustained ingest — exactly where the
// result cache degrades to a 0% hit rate — and its answers track the new
// rows, matching a view-less connector byte for byte.
func TestViewServedFederatedQueryUnderIngest(t *testing.T) {
	servers := []*olap.Server{olap.NewServer("s0"), olap.NewServer("s1")}
	d, err := olap.NewDeployment(olap.DeploymentConfig{
		Table:        olap.TableConfig{Name: "orders", Schema: ordersSchema(), SegmentRows: 50},
		Servers:      servers,
		SegmentStore: objstore.NewMemStore(),
		Backup:       olap.BackupP2P,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := orderRows(400)
	for i := 0; i < 200; i++ {
		if err := d.Ingest(i%2, rows[i]); err != nil {
			t.Fatal(err)
		}
	}

	pinot := NewPinotConnector("pinot")
	pinot.CacheMaxBytes = 1 << 20
	pinot.EnableViews = &matview.Config{}
	pinot.AddTable(d)
	e := NewEngine()
	e.Register(pinot)

	// A view-less twin answers the same SQL cold, as the oracle.
	plain := NewPinotConnector("plain")
	plain.TrimExact = true
	plain.AddTable(d)
	oracle := NewEngine()
	oracle.Register(plain)

	frag := AggregateQuery{
		GroupBy: []string{"city"},
		Aggs: []sqlparse.SelectItem{
			{Func: sqlparse.FuncSum, Column: "amount", Alias: "revenue"},
		},
	}
	if err := pinot.RegisterView(context.Background(), "orders", frag); err != nil {
		t.Fatal(err)
	}

	const sql = "SELECT city, SUM(amount) AS revenue FROM pinot.orders GROUP BY city"
	const oracleSQL = "SELECT city, SUM(amount) AS revenue FROM plain.orders GROUP BY city"

	res, err := e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Exec.ViewHit != 1 {
		t.Fatalf("registered fragment must be view-served, stats %+v", res.Stats.Exec)
	}
	if len(res.Plan) != 1 || !strings.Contains(res.Plan[0], "view=hit") {
		t.Fatalf("plan %v should show view=hit", res.Plan)
	}
	if strings.Contains(res.Plan[0], "cache=hit") {
		t.Fatalf("view hit must not double-serve from the cache: %v", res.Plan)
	}

	// Sustained ingest: every query lands on a freshly-bumped generation,
	// so the cache can never hit — but the view keeps serving, and its
	// answer tracks each new row.
	for i := 200; i < 400; i++ {
		if err := d.Ingest(i%2, rows[i]); err != nil {
			t.Fatal(err)
		}
		if i%50 != 0 {
			continue
		}
		got, err := e.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Exec.ViewHit != 1 || !strings.Contains(got.Plan[0], "view=hit") {
			t.Fatalf("ingest round %d: view must keep serving, plan %v stats %+v",
				i, got.Plan, got.Stats.Exec)
		}
		want, err := oracle.Query(oracleSQL)
		if err != nil {
			t.Fatal(err)
		}
		if rowsKey(got) != rowsKey(want) {
			t.Fatalf("ingest round %d: view answer diverged\n got %v\nwant %v", i, got.Rows, want.Rows)
		}
	}
	if st := pinot.ViewRegistry("orders").Stats(); st.Hits == 0 || st.RowsMerged == 0 {
		t.Fatalf("registry did no incremental serving: %+v", st)
	}

	// An unregistered shape on the same connector still uses the cache.
	other := "SELECT city, COUNT(*) AS n FROM pinot.orders GROUP BY city"
	if _, err := e.Query(other); err != nil {
		t.Fatal(err)
	}
	cached, err := e.Query(other)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Stats.Exec.ViewHit != 0 || !strings.Contains(cached.Plan[0], "cache=hit") {
		t.Fatalf("unregistered shape must keep cache behavior: %v %+v",
			cached.Plan, cached.Stats.Exec)
	}
}

// TestRegisterViewRequiresEnableViews: registration without EnableViews is
// a typed error, not a silent no-op.
func TestRegisterViewRequiresEnableViews(t *testing.T) {
	servers := []*olap.Server{olap.NewServer("s0")}
	d, err := olap.NewDeployment(olap.DeploymentConfig{
		Table:        olap.TableConfig{Name: "orders", Schema: ordersSchema(), SegmentRows: 50},
		Servers:      servers,
		SegmentStore: objstore.NewMemStore(),
		Backup:       olap.BackupP2P,
	})
	if err != nil {
		t.Fatal(err)
	}
	pinot := NewPinotConnector("pinot")
	pinot.AddTable(d)
	if err := pinot.RegisterView(context.Background(), "orders", AggregateQuery{
		Aggs: []sqlparse.SelectItem{{Func: sqlparse.FuncCount}},
	}); err == nil {
		t.Fatal("RegisterView without EnableViews must fail")
	}
	if pinot.ViewRegistry("orders") != nil {
		t.Fatal("no registry should exist without EnableViews")
	}
}
