// Package regions implements the all-active multi-region strategy of §6
// (Figs 6-7): how the streaming stack survives the loss of an entire
// region without losing data or replaying the full backlog.
//
// Each Region pairs a regional broker cluster (where producers publish)
// with an aggregate cluster; uReplicator pipes (internal/stream/replicator)
// fan every regional cluster into every region's aggregate cluster, so
// each region materializes the same global view. On top of that sit the
// two consumption modes of Fig 7:
//
//   - Active-active: identical consumers run against each region's
//     aggregate cluster and converge to the same state because both see
//     the same global input; an ActiveActiveDB (a synchronously
//     replicated KV stand-in) holds results visible from all regions and
//     a Coordinator elects which region's output is authoritative.
//   - Active-passive: one active consumer checkpoints its progress
//     through the OffsetSync service, which continuously maps offsets
//     between the regions' aggregate clusters; after a regional failure
//     the passive consumer resumes from the synced offset in the
//     surviving region — no loss, bounded replay overlap.
//
// Experiment E12 reproduces both failover scenarios; the integration test
// in audit_integration_test.go additionally runs Chaperone-style audit
// counts across the replication topology.
package regions
