package regions

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/stream"
	"repro/internal/stream/replicator"
)

// ActiveActiveDB is the replicated key-value store of Fig 6/7 ("an
// active/active database"): a synchronously replicated KV visible from all
// regions. Loss semantics are out of scope; the experiments need its role,
// not its internals.
type ActiveActiveDB struct {
	mu   sync.RWMutex
	data map[string]string
}

// NewActiveActiveDB returns an empty store.
func NewActiveActiveDB() *ActiveActiveDB {
	return &ActiveActiveDB{data: make(map[string]string)}
}

// Put stores a value.
func (db *ActiveActiveDB) Put(key, value string) {
	db.mu.Lock()
	db.data[key] = value
	db.mu.Unlock()
}

// Get returns the value and whether it exists.
func (db *ActiveActiveDB) Get(key string) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.data[key]
	return v, ok
}

// Keys returns all keys with the prefix, sorted.
func (db *ActiveActiveDB) Keys(prefix string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for k := range db.data {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Region is one deployment region: a regional cluster receiving locally
// produced events and an aggregate cluster receiving the replicated global
// view.
type Region struct {
	Name      string
	Regional  *stream.Cluster
	Aggregate *stream.Cluster
}

// MappingStore collects uReplicator offset-mapping checkpoints keyed by
// (src cluster, dst cluster, topic, partition), kept sorted by source
// offset. It implements replicator.CheckpointStore and is typically backed
// by the active-active DB in deployment; here it holds the mappings
// in-memory with the same semantics.
type MappingStore struct {
	mu       sync.RWMutex
	mappings map[string][]replicator.OffsetMapping
}

// NewMappingStore returns an empty store.
func NewMappingStore() *MappingStore {
	return &MappingStore{mappings: make(map[string][]replicator.OffsetMapping)}
}

func mappingKey(src, dst, topic string, partition int) string {
	return fmt.Sprintf("%s|%s|%s|%d", src, dst, topic, partition)
}

// SaveMapping implements replicator.CheckpointStore.
func (ms *MappingStore) SaveMapping(src, dst string, m replicator.OffsetMapping) {
	key := mappingKey(src, dst, m.Topic, m.Partition)
	ms.mu.Lock()
	defer ms.mu.Unlock()
	list := ms.mappings[key]
	// Checkpoints arrive in increasing SrcOffset per partition; keep sorted.
	if n := len(list); n > 0 && list[n-1].SrcOffset > m.SrcOffset {
		i := sort.Search(n, func(i int) bool { return list[i].SrcOffset >= m.SrcOffset })
		list = append(list[:i], append([]replicator.OffsetMapping{m}, list[i:]...)...)
	} else {
		list = append(list, m)
	}
	ms.mappings[key] = list
}

// SrcForDst returns the largest source offset whose replicated prefix ends
// at or before dstOffset in (src→dst) replication, or false when no
// checkpoint covers it.
func (ms *MappingStore) SrcForDst(src, dst, topic string, partition int, dstOffset int64) (int64, bool) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	list := ms.mappings[mappingKey(src, dst, topic, partition)]
	var best int64
	found := false
	for _, m := range list {
		if m.DstOffset <= dstOffset {
			best = m.SrcOffset
			found = true
		}
	}
	return best, found
}

// DstForSrc returns the destination offset corresponding to the largest
// checkpointed source offset ≤ srcOffset, or false when none.
func (ms *MappingStore) DstForSrc(src, dst, topic string, partition int, srcOffset int64) (int64, bool) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	list := ms.mappings[mappingKey(src, dst, topic, partition)]
	var best int64
	found := false
	for _, m := range list {
		if m.SrcOffset <= srcOffset {
			best = m.DstOffset
			found = true
		}
	}
	return best, found
}

// MultiRegion wires regions together: one uReplicator per (regional →
// aggregate) pair, a shared mapping store, an active-active DB, and the
// coordinator's primary-region pointer.
type MultiRegion struct {
	regions  []*Region
	topics   []string
	mappings *MappingStore
	db       *ActiveActiveDB

	mu          sync.Mutex
	replicators []*replicator.Replicator
	primary     int
	failovers   int
}

// NewMultiRegion creates the mesh for the given topics. Every topic must
// already exist with identical partition counts on every regional and
// aggregate cluster.
func NewMultiRegion(regions []*Region, topics []string, cfg replicator.Config) (*MultiRegion, error) {
	if len(regions) < 2 {
		return nil, fmt.Errorf("regions: need at least 2 regions")
	}
	mr := &MultiRegion{
		regions:  regions,
		topics:   topics,
		mappings: NewMappingStore(),
		db:       NewActiveActiveDB(),
	}
	// Each region's regional cluster replicates into EVERY region's
	// aggregate cluster ("all the trip events are sent over to the Kafka
	// regional cluster and then aggregated into the aggregate clusters for
	// the global view").
	for _, src := range regions {
		for _, dst := range regions {
			r, err := replicator.New(src.Regional, dst.Aggregate, topics, cfg, mr.mappings)
			if err != nil {
				return nil, err
			}
			mr.replicators = append(mr.replicators, r)
		}
	}
	return mr, nil
}

// Start launches all replicators.
func (mr *MultiRegion) Start() {
	for _, r := range mr.replicators {
		r.Start()
	}
}

// Stop halts all replicators.
func (mr *MultiRegion) Stop() {
	for _, r := range mr.replicators {
		r.Stop()
	}
}

// DB returns the active-active database.
func (mr *MultiRegion) DB() *ActiveActiveDB { return mr.db }

// Mappings returns the offset-mapping store.
func (mr *MultiRegion) Mappings() *MappingStore { return mr.mappings }

// Region returns a region by index.
func (mr *MultiRegion) Region(i int) *Region { return mr.regions[i] }

// Regions returns the region count.
func (mr *MultiRegion) Regions() int { return len(mr.regions) }

// Primary returns the coordinator's current primary region index.
func (mr *MultiRegion) Primary() int {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	return mr.primary
}

// Failover moves the primary to the next healthy region (the "all-active
// coordinating service" reacting to disaster) and returns the new primary.
func (mr *MultiRegion) Failover() int {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	mr.failovers++
	for i := 1; i < len(mr.regions); i++ {
		cand := (mr.primary + i) % len(mr.regions)
		if !mr.regions[cand].Aggregate.Down() {
			mr.primary = cand
			return cand
		}
	}
	return mr.primary
}

// Failovers counts coordinator failovers.
func (mr *MultiRegion) Failovers() int {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	return mr.failovers
}

// WaitReplicated blocks until every replicator's lag is zero or the timeout
// passes; it returns the residual total lag.
func (mr *MultiRegion) WaitReplicated(timeout time.Duration) int64 {
	deadline := time.Now().Add(timeout)
	for {
		var lag int64
		for _, r := range mr.replicators {
			lag += r.Lag()
		}
		if lag == 0 || time.Now().After(deadline) {
			return lag
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// OffsetSync is the offset sync job of Fig 7: it periodically translates an
// active/passive consumer group's committed offsets from the active region's
// aggregate cluster into equivalent offsets on every passive region's
// aggregate cluster, via the uReplicator offset-mapping checkpoints.
type OffsetSync struct {
	mr    *MultiRegion
	group string
	topic string
}

// NewOffsetSync creates a sync job for one consumer group on one topic.
func NewOffsetSync(mr *MultiRegion, group, topic string) *OffsetSync {
	return &OffsetSync{mr: mr, group: group, topic: topic}
}

// Sync translates the group's committed offsets from the region `active` to
// every other region. It returns the number of partition offsets synced.
// The translation goes aggregate(active) → regional source offset → every
// other aggregate: conservative (≤ exact position), so failover re-reads a
// bounded suffix (at-least-once) instead of losing data or replaying the
// full backlog.
func (s *OffsetSync) Sync(active int) int {
	mr := s.mr
	act := mr.regions[active]
	n, err := act.Aggregate.Partitions(s.topic)
	if err != nil {
		return 0
	}
	synced := 0
	for p := 0; p < n; p++ {
		tp := stream.TopicPartition{Topic: s.topic, Partition: p}
		committed := act.Aggregate.Committed(s.group, tp)
		if committed == 0 {
			continue
		}
		// The aggregate cluster interleaves messages replicated from every
		// regional cluster; translate through each source region and take
		// the minimum safe position per destination.
		for di, dst := range mr.regions {
			if di == active {
				continue
			}
			var dstOffset int64
			resolved := false
			for _, src := range mr.regions {
				srcOff, found := mr.mappings.SrcForDst(src.Regional.Name(), act.Aggregate.Name(), s.topic, p, committed)
				if !found {
					// This source region contributed nothing (yet) to the
					// active aggregate: it imposes no constraint.
					continue
				}
				d, found := mr.mappings.DstForSrc(src.Regional.Name(), dst.Aggregate.Name(), s.topic, p, srcOff)
				if !found {
					// The passive aggregate has not received this source's
					// data at all: only offset 0 is safe.
					d = 0
				}
				if !resolved || d < dstOffset {
					dstOffset = d
				}
				resolved = true
			}
			if resolved {
				dst.Aggregate.CommitGroupOffset(s.group, tp, dstOffset)
				synced++
			}
		}
	}
	return synced
}
