package regions

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/stream/replicator"
)

func newRegion(t *testing.T, name string, partitions int, topics ...string) *Region {
	t.Helper()
	mk := func(suffix string) *stream.Cluster {
		c, err := stream.NewCluster(stream.ClusterConfig{Name: name + "-" + suffix, Nodes: 3, ReplicationInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		for _, topic := range topics {
			if err := c.CreateTopic(topic, stream.TopicConfig{Partitions: partitions, Acks: stream.AckAll}); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	return &Region{Name: name, Regional: mk("regional"), Aggregate: mk("aggregate")}
}

func setupMesh(t *testing.T) *MultiRegion {
	t.Helper()
	r1 := newRegion(t, "dca", 2, "trips")
	r2 := newRegion(t, "phx", 2, "trips")
	mr, err := NewMultiRegion([]*Region{r1, r2}, []string{"trips"}, replicator.Config{
		Workers: 1, Interval: time.Millisecond, CheckpointEvery: 5, BatchSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	mr.Start()
	t.Cleanup(mr.Stop)
	return mr
}

func TestActiveActiveDB(t *testing.T) {
	db := NewActiveActiveDB()
	db.Put("surge/sf", "1.5")
	db.Put("surge/nyc", "2.0")
	db.Put("other", "x")
	if v, ok := db.Get("surge/sf"); !ok || v != "1.5" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if _, ok := db.Get("missing"); ok {
		t.Error("missing key should not exist")
	}
	keys := db.Keys("surge/")
	if len(keys) != 2 || keys[0] != "surge/nyc" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestMappingStore(t *testing.T) {
	ms := NewMappingStore()
	for i := int64(1); i <= 5; i++ {
		ms.SaveMapping("a", "b", replicator.OffsetMapping{Topic: "t", Partition: 0, SrcOffset: i * 10, DstOffset: i * 10})
	}
	if src, ok := ms.SrcForDst("a", "b", "t", 0, 35); !ok || src != 30 {
		t.Errorf("SrcForDst(35) = %d, %v; want 30", src, ok)
	}
	if dst, ok := ms.DstForSrc("a", "b", "t", 0, 42); !ok || dst != 40 {
		t.Errorf("DstForSrc(42) = %d, %v; want 40", dst, ok)
	}
	if _, ok := ms.SrcForDst("a", "b", "t", 0, 5); ok {
		t.Error("offset below first checkpoint should not resolve")
	}
	if _, ok := ms.SrcForDst("x", "y", "t", 0, 100); ok {
		t.Error("unknown pipe should not resolve")
	}
}

func TestGlobalViewAggregation(t *testing.T) {
	mr := setupMesh(t)
	// Produce regionally in both regions.
	for ri := 0; ri < 2; ri++ {
		p := stream.NewProducer(mr.Region(ri).Regional, fmt.Sprintf("svc-%d", ri), "", nil)
		for i := 0; i < 40; i++ {
			if err := p.Produce("trips", nil, []byte(fmt.Sprintf("r%d-%d", ri, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if lag := mr.WaitReplicated(5 * time.Second); lag != 0 {
		t.Fatalf("replication lag = %d", lag)
	}
	// Both aggregates hold the global view (80 messages each).
	for ri := 0; ri < 2; ri++ {
		var total int64
		for p := 0; p < 2; p++ {
			_, high, err := mr.Region(ri).Aggregate.Watermarks(stream.TopicPartition{Topic: "trips", Partition: p})
			if err != nil {
				t.Fatal(err)
			}
			total += high
		}
		if total != 80 {
			t.Errorf("region %d aggregate has %d, want 80 (global view)", ri, total)
		}
	}
}

func TestCoordinatorFailover(t *testing.T) {
	mr := setupMesh(t)
	if mr.Primary() != 0 {
		t.Fatalf("initial primary = %d", mr.Primary())
	}
	mr.Region(0).Aggregate.SetDown(true)
	if got := mr.Failover(); got != 1 {
		t.Fatalf("failover moved primary to %d, want 1", got)
	}
	if mr.Failovers() != 1 {
		t.Errorf("failovers = %d", mr.Failovers())
	}
	mr.Region(0).Aggregate.SetDown(false)
}

func TestActivePassiveOffsetSync(t *testing.T) {
	mr := setupMesh(t)
	// Produce 100 messages in region 0's regional cluster.
	p := stream.NewProducer(mr.Region(0).Regional, "svc", "", nil)
	for i := 0; i < 100; i++ {
		if err := p.Produce("trips", nil, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if lag := mr.WaitReplicated(5 * time.Second); lag != 0 {
		t.Fatalf("replication lag = %d", lag)
	}

	// An active/passive consumer (payment processing) consumes ~60% on the
	// active region's aggregate and commits.
	active := mr.Region(0)
	consumer := active.Aggregate.NewConsumer("payments", "trips")
	consumed := 0
	for consumed < 60 {
		msgs := consumer.Poll(time.Second, 10)
		if len(msgs) == 0 {
			break
		}
		consumed += len(msgs)
	}
	consumer.Commit()
	consumer.Close()

	// The offset sync job translates committed offsets to region 1.
	sync := NewOffsetSync(mr, "payments", "trips")
	if synced := sync.Sync(0); synced == 0 {
		t.Fatal("offset sync translated nothing")
	}

	// Disaster strikes region 0; consumer resumes on region 1.
	mr.Region(0).Aggregate.SetDown(true)
	mr.Failover()
	passive := mr.Region(1)
	resumed := passive.Aggregate.NewConsumer("payments", "trips")
	defer resumed.Close()
	var got int
	for {
		msgs := resumed.Poll(300*time.Millisecond, 50)
		if len(msgs) == 0 {
			break
		}
		got += len(msgs)
	}
	// No loss: it must cover at least the unconsumed tail (100-60 = 40);
	// bounded replay: it must NOT replay the full backlog from zero. The
	// replay overlap is bounded by the checkpoint granularity, which is
	// effectively one replication batch (16) per partition.
	if got < 40 {
		t.Errorf("resumed consumer saw %d, want >= 40 (no data loss)", got)
	}
	if got >= 100 {
		t.Errorf("resumed consumer saw %d: replayed the full backlog instead of resuming from synced offsets", got)
	}
}

func TestNewMultiRegionValidation(t *testing.T) {
	r := newRegion(t, "solo", 1, "t")
	if _, err := NewMultiRegion([]*Region{r}, []string{"t"}, replicator.Config{}); err == nil {
		t.Error("single-region mesh should be rejected")
	}
}
