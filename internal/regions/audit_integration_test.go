package regions

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/stream/chaperone"
	"repro/internal/stream/replicator"
)

// TestChaperoneAuditsReplicationPipeline wires Chaperone across a
// regional→aggregate uReplicator pipeline (the exact §4.1.4 deployment):
// clean replication produces no alerts; injected message loss between the
// stages produces an alert for the affected window.
func TestChaperoneAuditsReplicationPipeline(t *testing.T) {
	src := newRegion(t, "dca", 2, "trips")
	auditor := chaperone.NewAuditor(time.Minute)
	auditor.RegisterStage("regional")
	auditor.RegisterStage("aggregate")

	r, err := replicator.New(src.Regional, src.Aggregate, []string{"trips"},
		replicator.Config{Workers: 1, Interval: time.Millisecond, BatchSize: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()

	// Produce with app timestamps pinned to two distinct windows.
	base := int64(1700000000000)
	base -= base % 60000
	p := stream.NewProducer(src.Regional, "svc", "", func() time.Time { return time.UnixMilli(base) })
	for i := 0; i < 100; i++ {
		if err := p.Produce("trips", nil, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Observe at the regional stage.
	regionalConsumer := src.Regional.NewConsumer("audit-regional", "trips")
	defer regionalConsumer.Close()
	seen := 0
	for seen < 100 {
		msgs := regionalConsumer.Poll(time.Second, 50)
		if len(msgs) == 0 {
			t.Fatalf("regional audit stalled at %d", seen)
		}
		for _, m := range msgs {
			auditor.Observe("regional", m)
		}
		seen += len(msgs)
	}

	// Wait for replication, then observe the aggregate stage — dropping 3
	// messages on the way to simulate pipeline loss.
	deadline := time.Now().Add(3 * time.Second)
	for r.Replicated() < 100 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	aggConsumer := src.Aggregate.NewConsumer("audit-agg", "trips")
	defer aggConsumer.Close()
	seen = 0
	dropped := 0
	for seen < 100 {
		msgs := aggConsumer.Poll(time.Second, 50)
		if len(msgs) == 0 {
			t.Fatalf("aggregate audit stalled at %d", seen)
		}
		for _, m := range msgs {
			if dropped < 3 {
				dropped++
				continue // injected loss
			}
			auditor.Observe("aggregate", m)
		}
		seen += len(msgs)
	}

	alerts := auditor.Audit(base + 10*60000)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v, want exactly 1 for the lossy window", alerts)
	}
	if diff := alerts[0].CountA - alerts[0].CountB; diff != 3 {
		t.Errorf("alert delta = %d, want 3 (the injected loss)", diff)
	}
}
