package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension (a Prometheus-style key/value pair).
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent use and nil-safe, so optional
// instrumentation can hold an unbound handle at zero cost.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are a caller bug but are not rejected —
// counters stay a single atomic).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous metric. Like Counter it is a single
// atomic, concurrent- and nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by a delta.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds observations whose
// nanosecond value has bit length i, i.e. [2^(i-1), 2^i). 40 buckets cover
// 1ns through ~9 minutes — beyond any latency this repo measures.
const histBuckets = 40

// Histogram is a fixed-bucket latency histogram with base-2 exponential
// buckets. Observe is one atomic add into a bucket selected by bits.Len64
// (no floating point, no lock); quantiles are estimated by linear
// interpolation inside the containing bucket, so an estimate is always
// within one bucket width (a factor of 2) of the true value — and much
// closer when observations cluster, as service latencies do. Nil-safe.
type Histogram struct {
	sum     atomic.Int64 // total observed nanoseconds
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper is bucket i's inclusive upper bound in nanoseconds.
func bucketUpper(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return float64(^uint64(0) >> 1)
	}
	return float64(uint64(1)<<uint(i)) - 1
}

// bucketLower is bucket i's inclusive lower bound in nanoseconds.
func bucketLower(i int) float64 {
	if i <= 0 {
		return 0
	}
	return float64(uint64(1) << uint(i-1))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	h.buckets[bucketIndex(ns)].Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds: the
// containing bucket is found by cumulative rank and the position inside it
// interpolated linearly. Returns 0 with no observations. The bucket counts
// are read without a lock, so a concurrent snapshot is approximate — exactly
// like scraping a live histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range counts {
		if counts[i] == 0 {
			continue
		}
		prev := cum
		cum += counts[i]
		if float64(cum) >= rank {
			lo, hi := bucketLower(i), bucketUpper(i)
			frac := (rank - float64(prev)) / float64(counts[i])
			return lo + (hi-lo)*frac
		}
	}
	return bucketUpper(histBuckets - 1)
}

// metricMeta remembers a registered metric's identity for snapshots.
type metricMeta struct {
	name   string
	labels []Label
}

// MetricPoint is one metric in a registry snapshot. For counters, gauges and
// gauge funcs, Value carries the reading; for histograms, Count/SumNs carry
// the totals and P50/P99/P999 the estimated quantiles in nanoseconds (Value
// repeats Count so every point has a headline number).
type MetricPoint struct {
	Name   string
	Labels []Label
	Kind   string // "counter", "gauge", "histogram"
	Value  float64
	Count  int64
	SumNs  float64
	P50    float64
	P99    float64
	P999   float64
}

// Registry is a process-local metrics registry. Metric constructors are
// get-or-create (the same name+labels always returns the same handle), so
// layers can bind handles independently without coordinating; SetGaugeFunc
// replaces, because gauge closures capture the component that registered
// them and the newest component owns the reading (e.g. several brokers over
// one deployment). The registry lock is taken only on registration and
// snapshot — never by Inc/Observe.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
	meta     map[string]metricMeta
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
		meta:     make(map[string]metricMeta),
	}
}

// metricKey canonicalizes name+labels (labels sorted by key) so the same
// family member always resolves to the same handle regardless of label
// order at the call site.
func metricKey(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range ls {
		sb.WriteByte('|')
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String(), ls
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	key, ls := metricKey(name, labels)
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[key]; c == nil {
		c = &Counter{}
		r.counters[key] = c
		r.meta[key] = metricMeta{name: name, labels: ls}
	}
	return c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	key, ls := metricKey(name, labels)
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g == nil {
		g = &Gauge{}
		r.gauges[key] = g
		r.meta[key] = metricMeta{name: name, labels: ls}
	}
	return g
}

// Histogram returns the histogram for name+labels, creating it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	key, ls := metricKey(name, labels)
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[key]; h == nil {
		h = &Histogram{}
		r.hists[key] = h
		r.meta[key] = metricMeta{name: name, labels: ls}
	}
	return h
}

// SetGaugeFunc registers (or replaces) a pull gauge: fn is evaluated only at
// snapshot time, so it may take component locks freely — but must never call
// back into a registry snapshot. Replacement semantics let a re-created
// component (a second broker over the same deployment) take over a reading.
func (r *Registry) SetGaugeFunc(name string, fn func() float64, labels ...Label) {
	key, ls := metricKey(name, labels)
	r.mu.Lock()
	r.gaugeFns[key] = fn
	r.meta[key] = metricMeta{name: name, labels: ls}
	r.mu.Unlock()
}

// Snapshot reads every registered metric into a sorted point list — the
// payload Deployment.MetricsSnapshot hands to bench/CI tooling. Gauge funcs
// are evaluated outside the registry lock.
func (r *Registry) Snapshot() []MetricPoint {
	r.mu.RLock()
	points := make([]MetricPoint, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFns)+len(r.hists))
	for key, c := range r.counters {
		m := r.meta[key]
		points = append(points, MetricPoint{Name: m.name, Labels: m.labels, Kind: "counter", Value: float64(c.Value())})
	}
	for key, g := range r.gauges {
		m := r.meta[key]
		points = append(points, MetricPoint{Name: m.name, Labels: m.labels, Kind: "gauge", Value: float64(g.Value())})
	}
	for key, h := range r.hists {
		m := r.meta[key]
		count := h.Count()
		points = append(points, MetricPoint{
			Name: m.name, Labels: m.labels, Kind: "histogram",
			Value: float64(count), Count: count, SumNs: float64(h.Sum().Nanoseconds()),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99), P999: h.Quantile(0.999),
		})
	}
	type fnPoint struct {
		meta metricMeta
		fn   func() float64
	}
	fns := make([]fnPoint, 0, len(r.gaugeFns))
	for key, fn := range r.gaugeFns {
		fns = append(fns, fnPoint{r.meta[key], fn})
	}
	r.mu.RUnlock()
	for _, p := range fns {
		points = append(points, MetricPoint{Name: p.meta.name, Labels: p.meta.labels, Kind: "gauge", Value: p.fn()})
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Name != points[j].Name {
			return points[i].Name < points[j].Name
		}
		return labelString(points[i].Labels) < labelString(points[j].Labels)
	})
	return points
}

func labelString(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// labelStringLe renders labels with an extra le bound appended, for
// histogram bucket lines.
func labelStringLe(ls []Label, le string) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for _, l := range ls {
		fmt.Fprintf(&sb, "%s=%q,", l.Key, l.Value)
	}
	fmt.Fprintf(&sb, "le=%q}", le)
	return sb.String()
}

// WriteProm writes the registry in Prometheus text exposition style:
// counters and gauges as single samples, histograms as cumulative
// name_bucket{le="..."} series (le in nanoseconds, one bound per occupied
// base-2 bucket) plus name_sum and name_count.
func (r *Registry) WriteProm(w io.Writer) error {
	points := r.Snapshot()
	r.mu.RLock()
	hists := make(map[string]*Histogram, len(r.hists))
	for key, h := range r.hists {
		m := r.meta[key]
		hists[m.name+labelString(m.labels)] = h
	}
	r.mu.RUnlock()
	for _, p := range points {
		ls := labelString(p.Labels)
		switch p.Kind {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %g\n", p.Name, ls, p.Value); err != nil {
				return err
			}
		case "histogram":
			h := hists[p.Name+ls]
			if h == nil {
				continue
			}
			var cum int64
			for i := 0; i < histBuckets; i++ {
				n := h.buckets[i].Load()
				if n == 0 {
					continue
				}
				cum += n
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, labelStringLe(p.Labels, fmt.Sprintf("%.0f", bucketUpper(i))), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, labelStringLe(p.Labels, "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n", p.Name, ls, p.SumNs, p.Name, ls, p.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
