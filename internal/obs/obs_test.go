package obs

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total"); again != c {
		t.Fatal("Counter did not return the same handle for the same name")
	}
	g := r.Gauge("queue_len")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if again := r.Gauge("queue_len"); again != g {
		t.Fatal("Gauge did not return the same handle for the same name")
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var l *Logger
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metric handles should read zero")
	}
	sp := tr.StartTrace("x")
	if sp.Active() {
		t.Fatal("nil tracer should return inert span")
	}
	sp.Child("c").End()
	sp.SetRows(1)
	sp.SetBytes(1)
	sp.AddRows(1)
	sp.SetAttr("k", "v")
	tr.FinishTrace(sp)
	if tr.FinishTraceSummary(sp) != nil {
		t.Fatal("nil tracer FinishTraceSummary should return nil")
	}
	if tr.Recent() != nil || tr.Slow() != nil || tr.SlowCount() != 0 {
		t.Fatal("nil tracer rings should be empty")
	}
	l.Info("dropped")
	if l.Recent() != nil {
		t.Fatal("nil logger should retain nothing")
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("scans", Label{"server", "s0"}, Label{"table", "orders"})
	// Same labels, different order: must be the same member.
	b := r.Counter("scans", Label{"table", "orders"}, Label{"server", "s0"})
	if a != b {
		t.Fatal("label order changed family-member identity")
	}
	other := r.Counter("scans", Label{"server", "s1"}, Label{"table", "orders"})
	if other == a {
		t.Fatal("different label values collapsed to one member")
	}
	a.Add(2)
	other.Inc()
	pts := r.Snapshot()
	if len(pts) != 2 {
		t.Fatalf("snapshot has %d points, want 2", len(pts))
	}
	// Sorted by name then labels: s0 before s1.
	if pts[0].Value != 2 || pts[1].Value != 1 {
		t.Fatalf("snapshot values = %v, %v; want 2, 1", pts[0].Value, pts[1].Value)
	}
	if pts[0].Labels[0].Key != "server" || pts[0].Labels[0].Value != "s0" {
		t.Fatalf("labels not sorted/preserved: %+v", pts[0].Labels)
	}
}

func TestHistogramQuantileWithinBucketWidth(t *testing.T) {
	h := &Histogram{}
	// Spread of realistic latencies.
	values := []int64{900, 1100, 1500, 3000, 4500, 9000, 15000, 40000, 100000, 1000000}
	for _, v := range values {
		h.Observe(time.Duration(v))
	}
	if h.Count() != int64(len(values)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(values))
	}
	var want int64
	for _, v := range values {
		want += v
	}
	if h.Sum() != time.Duration(want) {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	// Quantile accuracy: the estimate must land within the base-2 bucket
	// containing the true quantile (within one bucket width).
	for _, tc := range []struct {
		q    float64
		true int64
	}{{0.5, 4500}, {0.9, 100000}, {1.0, 1000000}} {
		got := h.Quantile(tc.q)
		i := bucketIndex(tc.true)
		lo, hi := bucketLower(i), bucketUpper(i)
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v, outside bucket [%v, %v] of true value %d", tc.q, got, lo, hi, tc.true)
		}
	}
	if h.Quantile(0.5) <= 0 {
		t.Fatal("median should be positive")
	}
	empty := &Histogram{}
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramSingleValueQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(5 * time.Microsecond) // 5000ns, bucket [4096, 8191]
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		got := h.Quantile(q)
		if got < 4096 || got > 8191 {
			t.Errorf("Quantile(%v) = %v, want within [4096, 8191]", q, got)
		}
	}
}

func TestConcurrentRegistryRace(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("depth", Label{"w", fmt.Sprint(w % 2)})
			h := r.Histogram("lat_ns")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(time.Duration(i) * time.Nanosecond)
				if i%500 == 0 {
					_ = r.Snapshot()
					_ = h.Quantile(0.99)
				}
			}
		}(w)
	}
	// Concurrent gauge-func churn and prom writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			r.SetGaugeFunc("derived", func() float64 { return float64(i) })
			var sb strings.Builder
			if err := r.WriteProm(&sb); err != nil {
				t.Errorf("WriteProm: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*iters {
		t.Fatalf("hits = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat_ns").Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestSetGaugeFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.SetGaugeFunc("cache_bytes", func() float64 { return 1 })
	r.SetGaugeFunc("cache_bytes", func() float64 { return 2 })
	pts := r.Snapshot()
	if len(pts) != 1 || pts[0].Value != 2 {
		t.Fatalf("snapshot = %+v, want single point with value 2", pts)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", Label{"tenant", "a"}).Add(3)
	r.Gauge("up").Set(1)
	r.SetGaugeFunc("derived", func() float64 { return 2.5 })
	h := r.Histogram("lat_ns")
	h.Observe(1000 * time.Nanosecond)
	h.Observe(5000 * time.Nanosecond)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"reqs_total{tenant=\"a\"} 3\n",
		"up 1\n",
		"derived 2.5\n",
		"lat_ns_bucket{le=\"+Inf\"} 2\n",
		"lat_ns_sum 6000\n",
		"lat_ns_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// Bucket series must be cumulative: the 1000ns bucket holds 1, the
	// 5000ns bucket accumulates to 2.
	if !strings.Contains(out, fmt.Sprintf("lat_ns_bucket{le=\"%.0f\"} 1\n", bucketUpper(bucketIndex(1000)))) {
		t.Errorf("prom output missing first cumulative bucket:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("lat_ns_bucket{le=\"%.0f\"} 2\n", bucketUpper(bucketIndex(5000)))) {
		t.Errorf("prom output missing second cumulative bucket:\n%s", out)
	}
}

func TestSnapshotHistogramPoint(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("seal_ns")
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	pts := r.Snapshot()
	if len(pts) != 1 {
		t.Fatalf("snapshot has %d points, want 1", len(pts))
	}
	p := pts[0]
	if p.Kind != "histogram" || p.Count != 10 || p.SumNs != 10*float64(time.Millisecond) {
		t.Fatalf("histogram point = %+v", p)
	}
	if p.P50 <= 0 || p.P99 < p.P50 || p.P999 < p.P99 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v p999=%v", p.P50, p.P99, p.P999)
	}
	if math.Abs(p.P50-float64(time.Millisecond.Nanoseconds())) > float64(time.Millisecond.Nanoseconds()) {
		t.Fatalf("p50 %v not within one bucket width of 1ms", p.P50)
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartTrace("broker.execute")
	if !root.Active() {
		t.Fatal("root should be active")
	}
	root.SetAttr("cache", "miss")
	route := root.Child("route")
	route.End()
	scan := root.Child("server.scan")
	scan.SetAttr("server", "s0")
	seg := scan.Child("segment.scan")
	seg.SetRows(100)
	seg.AddRows(50)
	seg.SetBytes(4096)
	seg.End()
	scan.SetRows(150)
	scan.End()
	root.SetRows(3)
	sum := tr.FinishTraceSummary(root)
	if sum == nil {
		t.Fatal("FinishTraceSummary returned nil")
	}
	if sum.Name != "broker.execute" || len(sum.Spans) != 4 {
		t.Fatalf("summary = %q with %d spans, want broker.execute with 4", sum.Name, len(sum.Spans))
	}
	if sum.Spans[0].Parent != -1 || sum.Spans[0].Rows != 3 {
		t.Fatalf("root span = %+v", sum.Spans[0])
	}
	segSum := sum.Find("segment.scan")
	if segSum == nil || segSum.Rows != 150 || segSum.Bytes != 4096 {
		t.Fatalf("segment.scan = %+v", segSum)
	}
	if sum.Spans[segSum.Parent].Name != "server.scan" {
		t.Fatalf("segment.scan parent = %q, want server.scan", sum.Spans[segSum.Parent].Name)
	}
	if got := sum.Slowest("server.scan"); got == nil || got.Attrs[0] != (Attr{"server", "s0"}) {
		t.Fatalf("Slowest(server.scan) = %+v", got)
	}
	rendered := sum.Render()
	for _, want := range []string{"broker.execute cache=miss", "  route", "  server.scan server=s0", "    segment.scan", "rows=150", "bytes=4096"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, rendered)
		}
	}
	// The recent ring materializes an equivalent summary on read.
	recent := tr.Recent()
	if len(recent) != 1 || recent[0].Name != sum.Name || len(recent[0].Spans) != len(sum.Spans) {
		t.Fatalf("recent ring = %v, want the one trace", recent)
	}
	if recent[0].Find("segment.scan").Rows != 150 {
		t.Fatalf("ring summary lost span data: %+v", recent[0])
	}
}

func TestTraceAttrOverwriteAndOverflow(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartTrace("q")
	root.SetAttr("cache", "miss")
	root.SetAttr("cache", "hit") // overwrite
	root.SetAttr("a", "1")
	root.SetAttr("b", "2")
	root.SetAttr("c", "3")
	root.SetAttr("overflow", "dropped") // past inline capacity
	sum := tr.FinishTraceSummary(root)
	if len(sum.Spans[0].Attrs) != maxSpanAttrs {
		t.Fatalf("attrs = %+v, want %d", sum.Spans[0].Attrs, maxSpanAttrs)
	}
	if sum.Spans[0].Attrs[0] != (Attr{"cache", "hit"}) {
		t.Fatalf("attr not overwritten: %+v", sum.Spans[0].Attrs[0])
	}
}

func TestStaleSpanHandleIsNoOp(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartTrace("q1")
	late := root.Child("server.scan")
	sum1 := tr.FinishTraceSummary(root)
	if sum1 == nil {
		t.Fatal("first finish failed")
	}
	// The trace is recycled; a second query may now be using it.
	root2 := tr.StartTrace("q2")
	// Late goroutine touches its stale handle: all must be silent no-ops.
	late.SetRows(999)
	late.SetAttr("server", "ghost")
	late.End()
	if late.Child("x").Active() {
		t.Fatal("stale handle spawned a live child")
	}
	if tr.FinishTraceSummary(late) != nil {
		t.Fatal("stale FinishTraceSummary should return nil")
	}
	sum2 := tr.FinishTraceSummary(root2)
	if sum2 == nil || len(sum2.Spans) != 1 || sum2.Spans[0].Rows != 0 {
		t.Fatalf("second trace polluted by stale handle: %+v", sum2)
	}
	if sum1.Spans[1].Rows != 0 {
		t.Fatalf("finished summary mutated after the fact: %+v", sum1.Spans[1])
	}
}

func TestTraceArenaBounded(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartTrace("q")
	live := 0
	for i := 0; i < maxSpansPerTrace+50; i++ {
		if root.Child("segment.scan").Active() {
			live++
		}
	}
	sum := tr.FinishTraceSummary(root)
	if len(sum.Spans) != maxSpansPerTrace {
		t.Fatalf("arena grew to %d spans, want cap %d", len(sum.Spans), maxSpansPerTrace)
	}
	if live != maxSpansPerTrace-1 {
		t.Fatalf("live children = %d, want %d", live, maxSpansPerTrace-1)
	}
	if sum.Spans[0].Dropped != 51 {
		t.Fatalf("root dropped = %d, want 51", sum.Spans[0].Dropped)
	}
	if !strings.Contains(sum.Render(), "dropped=51") {
		t.Fatal("render should surface dropped count")
	}
}

func TestSlowQueryLog(t *testing.T) {
	hist := &Histogram{}
	tr := NewTracer(TracerConfig{Recent: 4, Slow: 2, SlowThreshold: 5 * time.Millisecond, Hist: hist})
	fast := tr.StartTrace("fast")
	tr.FinishTrace(fast)
	for i := 0; i < 3; i++ {
		slow := tr.StartTrace(fmt.Sprintf("slow%d", i))
		time.Sleep(6 * time.Millisecond)
		tr.FinishTrace(slow)
	}
	if got := tr.SlowCount(); got != 3 {
		t.Fatalf("SlowCount = %d, want 3", got)
	}
	slowLog := tr.Slow()
	if len(slowLog) != 2 { // ring capacity 2: oldest evicted
		t.Fatalf("slow ring holds %d, want 2", len(slowLog))
	}
	if slowLog[0].Name != "slow1" || slowLog[1].Name != "slow2" {
		t.Fatalf("slow ring order = %q, %q; want slow1, slow2", slowLog[0].Name, slowLog[1].Name)
	}
	if hist.Count() != 4 {
		t.Fatalf("tracer histogram observed %d, want 4", hist.Count())
	}
	if got := len(tr.Recent()); got != 4 {
		t.Fatalf("recent ring holds %d, want 4", got)
	}
}

func TestRecentRingEviction(t *testing.T) {
	tr := NewTracer(TracerConfig{Recent: 3})
	for i := 0; i < 5; i++ {
		tr.FinishTrace(tr.StartTrace(fmt.Sprintf("q%d", i)))
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent holds %d, want 3", len(recent))
	}
	for i, want := range []string{"q2", "q3", "q4"} {
		if recent[i].Name != want {
			t.Fatalf("recent[%d] = %q, want %q", i, recent[i].Name, want)
		}
	}
}

func TestConcurrentTracesRace(t *testing.T) {
	tr := NewTracer(TracerConfig{Recent: 16, Slow: 8, SlowThreshold: time.Nanosecond})
	const workers = 8
	const queries = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				root := tr.StartTrace("q")
				ctx := ContextWithSpan(context.Background(), root)
				var inner sync.WaitGroup
				for s := 0; s < 3; s++ {
					inner.Add(1)
					go func(s int) {
						defer inner.Done()
						sp, _ := StartSpan(ctx, "server.scan")
						sp.SetAttr("server", fmt.Sprint(s))
						sp.SetRows(int64(s))
						sp.End()
					}(s)
				}
				inner.Wait()
				if sum := tr.FinishTraceSummary(root); sum == nil {
					t.Error("FinishTraceSummary returned nil for live root")
					return
				}
				if i%50 == 0 {
					_ = tr.Recent()
					_ = tr.Slow()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.SlowCount(); got != workers*queries {
		t.Fatalf("SlowCount = %d, want %d", got, workers*queries)
	}
	for _, sum := range tr.Recent() {
		if len(sum.Spans) != 4 {
			t.Fatalf("trace has %d spans, want 4 (root + 3 scans)", len(sum.Spans))
		}
	}
}

func TestStartSpanWithoutTraceIsNoOp(t *testing.T) {
	ctx := context.Background()
	sp, ctx2 := StartSpan(ctx, "anything")
	if sp.Active() {
		t.Fatal("span should be inert without a trace in ctx")
	}
	if ctx2 != ctx {
		t.Fatal("ctx should be returned unchanged on the disabled path")
	}
	if SpanFromContext(ctx).Active() {
		t.Fatal("empty ctx should yield inert span")
	}
}

func TestLogger(t *testing.T) {
	var sunk []Event
	l := NewLogger(LevelInfo, 4, func(e Event) { sunk = append(sunk, e) })
	l.Debug("below threshold", F("x", 1))
	l.Info("first")
	l.Warn("fallback", F("catalog", "hive"), F("fragment", "aggregate"))
	if len(sunk) != 2 {
		t.Fatalf("sink received %d events, want 2", len(sunk))
	}
	recent := l.Recent()
	if len(recent) != 2 {
		t.Fatalf("recent holds %d, want 2", len(recent))
	}
	ev := recent[1]
	if ev.Level != LevelWarn || ev.Field("fragment") != "aggregate" || ev.Field("missing") != nil {
		t.Fatalf("event = %+v", ev)
	}
	if got := ev.Format(); !strings.Contains(got, "warn fallback") || !strings.Contains(got, "fragment=aggregate") {
		t.Fatalf("Format = %q", got)
	}
	for i := 0; i < 10; i++ {
		l.Error(fmt.Sprintf("e%d", i))
	}
	recent = l.Recent()
	if len(recent) != 4 || recent[3].Msg != "e9" {
		t.Fatalf("ring eviction wrong: %+v", recent)
	}
	if LevelDebug.String() != "debug" || Level(9).String() != "level(9)" {
		t.Fatal("Level.String mismatch")
	}
}

func TestLoggerConcurrentRace(t *testing.T) {
	l := NewLogger(LevelDebug, 32, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Info("msg", F("w", w), F("i", i))
				if i%100 == 0 {
					_ = l.Recent()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(l.Recent()); got != 32 {
		t.Fatalf("recent holds %d, want 32", got)
	}
}
