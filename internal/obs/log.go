package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// Field is one structured key/value pair on an event.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured log record.
type Event struct {
	Time   time.Time
	Level  Level
	Msg    string
	Fields []Field
}

// Field returns the value for key, or nil.
func (e Event) Field(key string) any {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Value
		}
	}
	return nil
}

// Format renders the event as "level msg key=value ...".
func (e Event) Format() string {
	var sb strings.Builder
	sb.WriteString(e.Level.String())
	sb.WriteByte(' ')
	sb.WriteString(e.Msg)
	for _, f := range e.Fields {
		fmt.Fprintf(&sb, " %s=%v", f.Key, f.Value)
	}
	return sb.String()
}

// Logger is a small structured logger: events at or above the minimum level
// go to the sink (if any) and into a bounded ring of recent events that
// tests and debug tooling can inspect. A nil *Logger drops everything.
type Logger struct {
	min  Level
	sink func(Event)

	mu     sync.Mutex
	recent []Event
	pos    int
	n      int
}

// NewLogger creates a logger keeping the last `recent` events (default 128)
// and forwarding each kept event to sink (may be nil).
func NewLogger(min Level, recent int, sink func(Event)) *Logger {
	if recent <= 0 {
		recent = 128
	}
	return &Logger{min: min, sink: sink, recent: make([]Event, recent)}
}

func (l *Logger) log(level Level, msg string, fields ...Field) {
	if l == nil || level < l.min {
		return
	}
	ev := Event{Time: time.Now(), Level: level, Msg: msg, Fields: fields}
	l.mu.Lock()
	l.recent[l.pos] = ev
	l.pos = (l.pos + 1) % len(l.recent)
	if l.n < len(l.recent) {
		l.n++
	}
	sink := l.sink
	l.mu.Unlock()
	if sink != nil {
		sink(ev)
	}
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields...) }

// Recent returns the retained events, oldest first.
func (l *Logger) Recent() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.recent[(l.pos-l.n+i+len(l.recent))%len(l.recent)])
	}
	return out
}
