// Package obs is the reproduction's observability substrate: a lock-cheap
// metrics registry (atomic counters, gauges, fixed-bucket latency histograms
// with quantile estimation, labeled families, snapshotting and a
// Prometheus-style text exposition), per-query span tracing threaded through
// context.Context with a bounded ring of recent traces and a threshold-based
// slow-query log, and a small structured logger.
//
// The paper's production story (§3-§5: uMetric-style monitoring, Chaperone
// auditing) rests on operators seeing where time and rows go inside every
// query. The repo's six serving mechanisms — scatter-gather, lifecycle,
// routing, top-K, cache/admission, materialized views — each grew counters
// on ExecStats but no per-stage latency attribution and no way to explain a
// slow query after the fact. This package closes that gap and is the layer
// the ROADMAP's loadsim/SLO harness scores against.
//
// # Overhead budget
//
// Everything here sits on the query hot path, so the design is allocation-
// and lock-averse:
//
//   - counters/gauges are single atomics; histograms are one atomic add into
//     a fixed base-2 bucket array (index via bits.Len64, no floating point);
//   - metric handles are bound once at wiring time (NewDeployment, New,
//     NewRegistry) and used lock-free afterwards; the registry's own lock is
//     only taken on registration and snapshot;
//   - a disabled tracer costs one context value lookup and a nil check; an
//     enabled tracer recycles Trace objects through a sync.Pool, stores span
//     data in a flat arena indexed by value-type Span handles (no per-span
//     allocation), and keeps attributes in a fixed inline array;
//   - on a broker cache hit the trace records the decision as a root-span
//     attribute instead of a child span, keeping the instrumented hit path
//     within a few percent of the uninstrumented one (benchjson gates the
//     ratio as obs_overhead).
//
// Span handles carry a generation stamp checked under the trace lock, so a
// scatter goroutine that outlives its query (early termination) can touch
// its span after the trace was recorded and recycled and the write is a
// safe no-op rather than corruption of a pooled, reused trace.
package obs
