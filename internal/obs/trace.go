package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Spans hold a small fixed number inline.
type Attr struct {
	Key   string
	Value string
}

// maxSpanAttrs is the inline attribute capacity per span. Every
// instrumentation site in the repo sets at most three (server name, cache
// decision, error), so four avoids any per-span allocation.
const maxSpanAttrs = 4

// spanData is one node in a trace's flat span arena.
type spanData struct {
	name    string
	parent  int32 // index into the arena; -1 for the root
	start   time.Time
	end     time.Time
	rows    int64
	bytes   int64
	attrs   [maxSpanAttrs]Attr
	nattrs  int8
	ended   bool
	dropped int32 // children not recorded because the arena was full
}

// maxSpansPerTrace bounds a single trace's arena so a query fanning out over
// thousands of segments cannot balloon a pooled trace. Overflowing children
// are counted on their parent instead of recorded.
const maxSpansPerTrace = 256

// trace is the mutable per-query record. It is recycled through the tracer's
// pool; gen is bumped on every recycle so stale Span handles become no-ops.
type trace struct {
	mu    sync.Mutex
	gen   uint32
	spans []spanData
}

// Span is a value-type handle onto one span of one trace. The zero Span is
// inert: every method is a no-op and Active reports false, so call sites can
// instrument unconditionally. A Span whose trace has since been finished and
// recycled (a scatter goroutine outliving an early-terminated query) is
// detected by the generation stamp and likewise degrades to a no-op.
type Span struct {
	t   *trace
	tr  *Tracer
	i   int32
	gen uint32
}

// Active reports whether the handle refers to a live trace.
func (s Span) Active() bool { return s.t != nil }

// live must be called with s.t.mu held.
func (s Span) live() bool { return s.gen == s.t.gen && int(s.i) < len(s.t.spans) }

// Child starts a sub-span under s. Returns an inert Span if s is inert, the
// trace has been recycled, or the arena is full (the drop is counted on s).
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if !s.live() {
		return Span{}
	}
	if len(s.t.spans) >= maxSpansPerTrace {
		s.t.spans[s.i].dropped++
		return Span{}
	}
	idx := int32(len(s.t.spans))
	s.t.spans = append(s.t.spans, spanData{name: name, parent: s.i, start: time.Now()})
	return Span{t: s.t, tr: s.tr, i: idx, gen: s.gen}
}

// End closes the span. Idempotent; safe on inert and stale handles.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if s.live() && !s.t.spans[s.i].ended {
		s.t.spans[s.i].ended = true
		s.t.spans[s.i].end = time.Now()
	}
	s.t.mu.Unlock()
}

// SetRows records the row count attributed to the span.
func (s Span) SetRows(n int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if s.live() {
		s.t.spans[s.i].rows = n
	}
	s.t.mu.Unlock()
}

// AddRows adds to the span's row count (for per-batch accumulation).
func (s Span) AddRows(n int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if s.live() {
		s.t.spans[s.i].rows += n
	}
	s.t.mu.Unlock()
}

// SetBytes records the byte count attributed to the span.
func (s Span) SetBytes(n int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if s.live() {
		s.t.spans[s.i].bytes = n
	}
	s.t.mu.Unlock()
}

// SetAttr records a key/value attribute; silently dropped past the inline
// capacity. Setting an existing key overwrites it.
func (s Span) SetAttr(key, value string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if s.live() {
		sd := &s.t.spans[s.i]
		for j := 0; j < int(sd.nattrs); j++ {
			if sd.attrs[j].Key == key {
				sd.attrs[j].Value = value
				s.t.mu.Unlock()
				return
			}
		}
		if int(sd.nattrs) < maxSpanAttrs {
			sd.attrs[sd.nattrs] = Attr{Key: key, Value: value}
			sd.nattrs++
		}
	}
	s.t.mu.Unlock()
}

// SpanSummary is one immutable span in a finished trace.
type SpanSummary struct {
	Name     string
	Parent   int           // index into TraceSummary.Spans; -1 for the root
	Offset   time.Duration // start relative to the trace start
	Duration time.Duration
	Rows     int64
	Bytes    int64
	Attrs    []Attr
	Dropped  int // children not recorded (arena overflow)
}

// TraceSummary is the immutable record of one finished query, stored in the
// tracer's recent/slow rings and attached to fedsql results.
type TraceSummary struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	Spans    []SpanSummary // index 0 is the root; children follow parents
}

// Find returns the first span with the given name, or nil.
func (ts *TraceSummary) Find(name string) *SpanSummary {
	if ts == nil {
		return nil
	}
	for i := range ts.Spans {
		if ts.Spans[i].Name == name {
			return &ts.Spans[i]
		}
	}
	return nil
}

// Slowest returns the longest span with the given name, or nil.
func (ts *TraceSummary) Slowest(name string) *SpanSummary {
	if ts == nil {
		return nil
	}
	var best *SpanSummary
	for i := range ts.Spans {
		if ts.Spans[i].Name == name && (best == nil || ts.Spans[i].Duration > best.Duration) {
			best = &ts.Spans[i]
		}
	}
	return best
}

// Render formats the span tree, one span per line, indented by depth:
//
//	broker.execute cache=miss (1.234ms) rows=12
//	  route (12µs)
//	  server.scan server=s0 (800µs) rows=5000
//
// Durations are rounded to the microsecond; zero row/byte counts are
// omitted. Children print in start order under their parent.
func (ts *TraceSummary) Render() string {
	if ts == nil || len(ts.Spans) == 0 {
		return ""
	}
	children := make([][]int, len(ts.Spans))
	roots := []int{}
	for i := range ts.Spans {
		p := ts.Spans[i].Parent
		if p < 0 {
			roots = append(roots, i)
		} else {
			children[p] = append(children[p], i)
		}
	}
	for _, c := range children {
		sort.Slice(c, func(a, b int) bool { return ts.Spans[c[a]].Offset < ts.Spans[c[b]].Offset })
	}
	var sb strings.Builder
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := &ts.Spans[i]
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(sp.Name)
		for _, a := range sp.Attrs {
			fmt.Fprintf(&sb, " %s=%s", a.Key, a.Value)
		}
		fmt.Fprintf(&sb, " (%s)", sp.Duration.Round(time.Microsecond))
		if sp.Rows > 0 {
			fmt.Fprintf(&sb, " rows=%d", sp.Rows)
		}
		if sp.Bytes > 0 {
			fmt.Fprintf(&sb, " bytes=%d", sp.Bytes)
		}
		if sp.Dropped > 0 {
			fmt.Fprintf(&sb, " dropped=%d", sp.Dropped)
		}
		sb.WriteByte('\n')
		for _, c := range children[i] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return sb.String()
}

// TracerConfig configures a Tracer. Zero values get sane defaults.
type TracerConfig struct {
	Recent        int           // recent-trace ring capacity (default 64)
	Slow          int           // slow-trace ring capacity (default 32)
	SlowThreshold time.Duration // 0 disables the slow-query log
	Hist          *Histogram    // optional: root duration observed here
}

// ringSlot is one reused ring entry holding a finished trace's raw spans.
// FinishTrace copies into the slot's backing array in place (no steady-state
// allocation on the hot path); Recent/Slow materialize TraceSummary values
// from the slots on demand — the rare human-driven read pays instead of
// every query.
type ringSlot struct {
	spans []spanData
}

// Tracer owns trace lifecycle: a sync.Pool of recycled traces, the bounded
// ring of recent finished traces, and the threshold-gated slow-query ring.
// A nil *Tracer is valid and disables tracing entirely.
type Tracer struct {
	cfg       TracerConfig
	pool      sync.Pool
	slowCount atomic.Int64

	mu        sync.Mutex
	recent    []ringSlot // ring
	recentPos int
	recentN   int
	slow      []ringSlot // ring
	slowPos   int
	slowN     int
}

// NewTracer creates a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Recent <= 0 {
		cfg.Recent = 64
	}
	if cfg.Slow <= 0 {
		cfg.Slow = 32
	}
	tr := &Tracer{cfg: cfg}
	tr.pool.New = func() any {
		return &trace{spans: make([]spanData, 0, 16)}
	}
	tr.recent = make([]ringSlot, cfg.Recent)
	tr.slow = make([]ringSlot, cfg.Slow)
	return tr
}

// StartTrace begins a new trace whose root span has the given name. Returns
// an inert Span on a nil tracer. The caller must eventually call FinishTrace
// on the returned root.
func (tr *Tracer) StartTrace(name string) Span {
	if tr == nil {
		return Span{}
	}
	t := tr.pool.Get().(*trace)
	t.mu.Lock()
	t.spans = append(t.spans[:0], spanData{name: name, parent: -1, start: time.Now()})
	gen := t.gen
	t.mu.Unlock()
	return Span{t: t, tr: tr, i: 0, gen: gen}
}

// FinishTrace ends the root (and any unended spans), records the trace into
// the recent ring — and the slow ring when the root duration crosses the
// threshold — observes the configured histogram, bumps the trace generation
// and recycles the trace. Must be called on the root Span returned by
// StartTrace. The hot path builds no summary (ring slots reuse their backing
// arrays); callers that need the summary use FinishTraceSummary.
func (tr *Tracer) FinishTrace(root Span) {
	tr.finish(root, false)
}

// FinishTraceSummary is FinishTrace plus a materialized summary of the
// finished trace, for callers that attach it to a result (fedsql). Returns
// nil on inert or stale handles.
func (tr *Tracer) FinishTraceSummary(root Span) *TraceSummary {
	return tr.finish(root, true)
}

func (tr *Tracer) finish(root Span, wantSummary bool) *TraceSummary {
	if tr == nil || root.t == nil {
		return nil
	}
	t := root.t
	t.mu.Lock()
	if root.gen != t.gen || len(t.spans) == 0 {
		t.mu.Unlock()
		return nil
	}
	now := time.Now()
	for i := range t.spans {
		if !t.spans[i].ended {
			t.spans[i].ended = true
			t.spans[i].end = now
		}
	}
	dur := t.spans[0].end.Sub(t.spans[0].start)
	var sum *TraceSummary
	if wantSummary {
		sum = summarize(t.spans)
	}
	slow := tr.cfg.SlowThreshold > 0 && dur >= tr.cfg.SlowThreshold
	// Lock order: t.mu then tr.mu (taken together nowhere else). The copy
	// must happen before the trace is recycled.
	tr.mu.Lock()
	tr.recentPos, tr.recentN = ringStore(tr.recent, tr.recentPos, tr.recentN, t.spans)
	if slow {
		tr.slowPos, tr.slowN = ringStore(tr.slow, tr.slowPos, tr.slowN, t.spans)
	}
	tr.mu.Unlock()
	t.gen++ // stale handles held by outliving goroutines become no-ops
	t.mu.Unlock()
	tr.pool.Put(t)

	tr.cfg.Hist.Observe(dur)
	if slow {
		tr.slowCount.Add(1)
	}
	return sum
}

// ringStore copies spans into the ring's current slot, reusing its backing
// array, and returns the advanced position and fill count. Caller holds tr.mu.
func ringStore(ring []ringSlot, pos, n int, spans []spanData) (int, int) {
	ring[pos].spans = append(ring[pos].spans[:0], spans...)
	pos = (pos + 1) % len(ring)
	if n < len(ring) {
		n++
	}
	return pos, n
}

// summarize materializes the immutable summary of a finished span arena.
// All span attributes share one backing allocation.
func summarize(spans []spanData) *TraceSummary {
	start := spans[0].start
	sum := &TraceSummary{
		Name:     spans[0].name,
		Start:    start,
		Duration: spans[0].end.Sub(start),
		Spans:    make([]SpanSummary, len(spans)),
	}
	nattrs := 0
	for i := range spans {
		nattrs += int(spans[i].nattrs)
	}
	backing := make([]Attr, 0, nattrs)
	for i := range spans {
		sd := &spans[i]
		ss := SpanSummary{
			Name:     sd.name,
			Parent:   int(sd.parent),
			Offset:   sd.start.Sub(start),
			Duration: sd.end.Sub(sd.start),
			Rows:     sd.rows,
			Bytes:    sd.bytes,
			Dropped:  int(sd.dropped),
		}
		if sd.nattrs > 0 {
			off := len(backing)
			backing = append(backing, sd.attrs[:sd.nattrs]...)
			ss.Attrs = backing[off:len(backing):len(backing)]
		}
		sum.Spans[i] = ss
	}
	return sum
}

// ringSnapshot materializes a ring's traces oldest-first. Caller holds tr.mu.
func ringSnapshot(ring []ringSlot, pos, n int) []*TraceSummary {
	out := make([]*TraceSummary, 0, n)
	for i := 0; i < n; i++ {
		slot := &ring[(pos-n+i+len(ring))%len(ring)]
		out = append(out, summarize(slot.spans))
	}
	return out
}

// Recent returns the finished traces still in the ring, oldest first.
func (tr *Tracer) Recent() []*TraceSummary {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return ringSnapshot(tr.recent, tr.recentPos, tr.recentN)
}

// Slow returns the slow-query log, oldest first.
func (tr *Tracer) Slow() []*TraceSummary {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return ringSnapshot(tr.slow, tr.slowPos, tr.slowN)
}

// SlowCount returns the total number of traces that crossed the slow
// threshold (including ones since evicted from the ring).
func (tr *Tracer) SlowCount() int64 {
	if tr == nil {
		return 0
	}
	return tr.slowCount.Load()
}

// ctxKey is the context key for the current span.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span.
func ContextWithSpan(ctx context.Context, sp Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the current span, or an inert Span.
func SpanFromContext(ctx context.Context) Span {
	sp, _ := ctx.Value(ctxKey{}).(Span)
	return sp
}

// StartSpan opens a child of the context's current span and returns it plus
// a derived context carrying it. With no span in ctx this is a no-op: the
// returned Span is inert and ctx is returned unchanged — the disabled-path
// cost is one value lookup.
func StartSpan(ctx context.Context, name string) (Span, context.Context) {
	parent := SpanFromContext(ctx)
	if parent.t == nil {
		return Span{}, ctx
	}
	child := parent.Child(name)
	if child.t == nil {
		return Span{}, ctx
	}
	return child, ContextWithSpan(ctx, child)
}
