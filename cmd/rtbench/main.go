// Command rtbench runs the full reproduction suite: every experiment from
// DESIGN.md's per-experiment index, printed as paper-style tables with the
// original claim alongside the measured rows.
//
// Usage:
//
//	rtbench            # run everything
//	rtbench E3 E11     # run selected experiments
package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	want := map[string]bool{}
	for _, arg := range os.Args[1:] {
		want[arg] = true
	}
	all := experiments.AllWithIntegration()
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		ran++
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("    paper: %s\n", e.Claim)
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		rows := e.Run()
		wall := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		for _, r := range rows {
			fmt.Printf("    %-42s %14.2f %s\n", r.Name, r.Value, r.Unit)
		}
		// Allocated is the cumulative allocation the experiment performed;
		// peak heap is the high-water mark of live heap the runtime saw.
		fmt.Printf("    (wall %.2fs, allocated %.1f MB, peak heap %.1f MB)\n\n",
			wall.Seconds(),
			float64(after.TotalAlloc-before.TotalAlloc)/(1<<20),
			float64(after.HeapSys-after.HeapReleased)/(1<<20))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rtbench: no experiment matched %v; available:\n", os.Args[1:])
		for _, e := range all {
			fmt.Fprintf(os.Stderr, "  %-5s %s\n", e.ID, e.Title)
		}
		os.Exit(1)
	}
}
