// Repolint machine-checks the repo's concurrency and cache-coherence
// invariants (see internal/analysis): genbump, lockscope, sentinelerr,
// ctxflow, statscopy.
//
// Standalone over packages (non-test files):
//
//	go run ./cmd/repolint ./...
//
// As a vet tool, which also covers test files and caches per package:
//
//	go build -o /tmp/repolint ./cmd/repolint
//	go vet -vettool=/tmp/repolint ./...
//
// Exit status is nonzero when any unsuppressed diagnostic is reported.
// Findings are suppressed line-by-line with a mandatory justification:
//
//	//lint:ignore <analyzer> <why this is safe / which contract covers it>
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func main() {
	progname := filepath.Base(os.Args[0])
	version := flag.String("V", "", "print version and exit (cmd/go tool-ID handshake)")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (cmd/go vet handshake)")
	checks := flag.String("checks", "", "comma-separated analyzer subset (default: all)")
	flag.Parse()

	// `go vet -vettool` handshake 1: tool identity for the build cache.
	if *version != "" {
		data, err := os.ReadFile(os.Args[0])
		if err != nil {
			fmt.Printf("%s version devel\n", progname)
			os.Exit(0)
		}
		fmt.Printf("%s version devel buildID=%x\n", progname, sha256.Sum256(data))
		os.Exit(0)
	}
	// Handshake 2: the flags the tool accepts (none are exposed to vet).
	if *printflags {
		fmt.Println("[]")
		os.Exit(0)
	}

	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	analyzers := analysis.ByName(names)
	if len(analyzers) == 0 {
		fmt.Fprintf(os.Stderr, "%s: no analyzers match -checks=%s\n", progname, *checks)
		os.Exit(2)
	}
	cfg := analysis.DefaultConfig()

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0], cfg, analyzers))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, cfg, analyzers))
}

// runVet analyzes one compilation unit described by a cmd/go vet.cfg.
func runVet(cfgPath string, cfg *analysis.Config, analyzers []*analysis.Analyzer) int {
	unit, vcfg, err := load.LoadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	code := 0
	if unit != nil && !vcfg.VetxOnly {
		diags, err := analysis.Run(unit, cfg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			return 1
		}
		code = report(os.Stderr, diags)
	}
	if err := vcfg.WriteVetx(); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	return code
}

// runStandalone analyzes the packages matching the patterns.
func runStandalone(patterns []string, cfg *analysis.Config, analyzers []*analysis.Analyzer) int {
	units, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	code := 0
	for _, u := range units {
		diags, err := analysis.Run(u, cfg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %s: %v\n", u.PkgPath, err)
			return 1
		}
		if c := report(os.Stderr, diags); c != 0 {
			code = c
		}
	}
	return code
}

func report(w io.Writer, diags []analysis.Diagnostic) int {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
