// Command streamctl demonstrates administering a federated stream
// deployment: it builds a two-cluster federation, provisions topics until
// they spill to the second cluster, produces traffic, migrates a live topic
// between physical clusters while a consumer keeps reading, and prints the
// resulting cluster/topic/partition state — the §4.1.1 operations story.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/stream"
	"repro/internal/stream/federation"
)

func main() {
	fed := federation.New()
	fed.SetTopicQuota(func(nodes int) int { return 2 })
	c1, err := stream.NewCluster(stream.ClusterConfig{Name: "cluster-a", Nodes: 30})
	if err != nil {
		log.Fatal(err)
	}
	defer c1.Close()
	c2, err := stream.NewCluster(stream.ClusterConfig{Name: "cluster-b", Nodes: 30})
	if err != nil {
		log.Fatal(err)
	}
	defer c2.Close()
	fed.AddCluster(c1)
	fed.AddCluster(c2)

	for _, t := range []string{"rider-events", "driver-events", "eats-orders"} {
		if err := fed.CreateTopic(t, stream.TopicConfig{Partitions: 4}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("topic placement after quota spill (quota = 2 topics/cluster):")
	for _, t := range fed.Topics() {
		c, _ := fed.Lookup(t)
		fmt.Printf("  %-14s -> %s\n", t, c.Name())
	}

	// Live traffic + consumer on rider-events.
	p := stream.NewProducer(fed, "rider-app", "", nil)
	for i := 0; i < 500; i++ {
		if err := p.Produce("rider-events", nil, []byte(fmt.Sprintf("e%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	consumer, err := fed.NewConsumer("dashboard", "rider-events")
	if err != nil {
		log.Fatal(err)
	}
	defer consumer.Close()
	seen := 0
	for seen < 200 {
		seen += len(consumer.Poll(time.Second, 50))
	}
	fmt.Printf("\nconsumer read %d messages from cluster-a\n", seen)

	// Migrate the live topic; the consumer follows without restart.
	fmt.Println("migrating rider-events -> cluster-b (consumer stays up)")
	if err := fed.MigrateTopic("rider-events", "cluster-b"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := p.Produce("rider-events", nil, []byte(fmt.Sprintf("post-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for seen < 800 && time.Now().Before(deadline) {
		seen += len(consumer.Poll(300*time.Millisecond, 50))
	}
	fmt.Printf("consumer total after migration: %d/800 (drained old cluster, redirected)\n", seen)

	fmt.Println("\ncluster-b partition state for rider-events:")
	for _, st := range c2.PartitionStats() {
		if st["topic"] == "rider-events" {
			fmt.Printf("  partition %v: high=%v bytes=%v leader=node-%v\n",
				st["partition"], st["high"], st["bytes"], st["leader"])
		}
	}
}
