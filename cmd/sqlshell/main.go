// Command sqlshell is an interactive federated SQL shell over a demo
// deployment: a Pinot table (pinot.orders) fed with synthetic order events
// and its archived twin (hive.orders). It demonstrates the §4.5 experience:
// one PrestoSQL dialect over fresh and historical data.
//
// Usage: echo "SELECT city, COUNT(*) FROM pinot.orders GROUP BY city" | sqlshell
// or run interactively and type queries terminated by newline; \q quits.
// -timeout bounds each query (0 = none); a timed-out query cancels its
// scatter-gather fan-out mid-flight via the engine's context path.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/fedsql"
	"repro/internal/metadata"
	"repro/internal/objstore"
	"repro/internal/olap"
	"repro/internal/record"
)

func main() {
	timeout := flag.Duration("timeout", 0, "per-query deadline (e.g. 500ms, 2s); 0 disables")
	flag.Parse()
	engine, err := buildDemo()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlshell:", err)
		os.Exit(1)
	}
	fmt.Println("catalogs:", strings.Join(engine.Catalogs(), ", "),
		"— tables: pinot.orders (fresh), hive.orders (archive). \\q to quit.")
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("sql> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == `\q`, line == "exit", line == "quit":
			return
		default:
			res, err := runQuery(engine, line, *timeout)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				printResult(res)
			}
		}
		fmt.Print("sql> ")
	}
}

// runQuery executes one statement under the configured deadline, threading
// the context through Engine.QueryCtx so OLAP segment scans and federated
// join sides stop when time runs out.
func runQuery(engine *fedsql.Engine, sql string, timeout time.Duration) (*fedsql.Result, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return engine.QueryCtx(ctx, sql)
}

func printResult(res *fedsql.Result) {
	for _, c := range res.Columns {
		fmt.Printf("%-18s", c)
	}
	fmt.Println()
	for _, row := range res.Rows {
		for _, v := range row {
			fmt.Printf("%-18v", v)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func demoSchema() *metadata.Schema {
	return &metadata.Schema{
		Name:    "orders",
		Version: 1,
		Fields: []metadata.Field{
			{Name: "order_id", Type: metadata.TypeString},
			{Name: "city", Type: metadata.TypeString, Dimension: true},
			{Name: "status", Type: metadata.TypeString, Dimension: true},
			{Name: "amount", Type: metadata.TypeDouble},
			{Name: "ts", Type: metadata.TypeTimestamp},
		},
		TimeField: "ts",
	}
}

func demoRows(n int) []record.Record {
	cities := []string{"sf", "nyc", "la", "chi"}
	statuses := []string{"placed", "cooking", "delivered"}
	rows := make([]record.Record, n)
	for i := range rows {
		rows[i] = record.Record{
			"order_id": fmt.Sprintf("o%06d", i),
			"city":     cities[i%4],
			"status":   statuses[i%3],
			"amount":   float64(i%80) + 0.99,
			"ts":       int64(1700000000000 + i*1000),
		}
	}
	return rows
}

func buildDemo() (*fedsql.Engine, error) {
	schema := demoSchema()
	rows := demoRows(20_000)
	servers := []*olap.Server{olap.NewServer("s0"), olap.NewServer("s1")}
	d, err := olap.NewDeployment(olap.DeploymentConfig{
		Table: olap.TableConfig{
			Name: "orders", Schema: schema, SegmentRows: 5000,
			Indexes: olap.IndexConfig{InvertedColumns: []string{"city", "status"}},
		},
		Servers:      servers,
		SegmentStore: objstore.NewMemStore(),
		Backup:       olap.BackupP2P,
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if err := d.Ingest(i%2, r); err != nil {
			return nil, err
		}
	}
	pinot := fedsql.NewPinotConnector("pinot")
	pinot.AddTable(d)

	store := objstore.NewMemStore()
	codec, err := record.NewCodec(schema)
	if err != nil {
		return nil, err
	}
	w := objstore.NewRawLogWriter(store, "orders", codec)
	if err := w.Append(rows); err != nil {
		return nil, err
	}
	if _, err := objstore.NewCompactor(store, "orders", codec).Compact(); err != nil {
		return nil, err
	}
	hive := fedsql.NewArchiveConnector("hive", store)
	hive.AddTable("orders", schema)

	engine := fedsql.NewEngine()
	engine.Register(pinot)
	engine.Register(hive)
	return engine, nil
}
