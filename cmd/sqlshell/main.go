// Command sqlshell is an interactive federated SQL shell over a demo
// deployment: a Pinot table (pinot.orders) fed with synthetic order events
// and its archived twin (hive.orders). It demonstrates the §4.5 experience:
// one PrestoSQL dialect over fresh and historical data.
//
// Usage: echo "SELECT city, COUNT(*) FROM pinot.orders GROUP BY city" | sqlshell
// or run interactively and type queries terminated by newline; \q quits.
// -timeout bounds each query (0 = none); a timed-out query cancels its
// scatter-gather fan-out mid-flight via the engine's context path.
//
// Prefix any SELECT with EXPLAIN to see the pushdown, routing, top-K trim,
// materialized-view and result-cache decisions instead of the rows (the
// query executes and the real per-scan stats are reported). Prefix with
// EXPLAIN ANALYZE to additionally print the recorded span tree — every stage
// from the federated scan through the broker scatter down to each segment
// scan, with per-span durations and row counts. The demo Pinot brokers run
// with a result cache, so repeating an EXPLAIN flips its plan line from
// cache=miss to cache=hit:
//
//	sql> EXPLAIN SELECT order_id, SUM(amount) AS rev FROM pinot.orders GROUP BY order_id ORDER BY rev DESC LIMIT 10
//	plan:
//	  scan pinot.orders [aggregate-scan] pushdown=aggs+limit exec=materialized route=partition servers_contacted=3 cache=hit trim=server k=1000 groups_trimmed=17000 rows_moved=10 time=32µs
//	stats: rows_moved=10 fallbacks=0 segments_scanned=8 rows_scanned=20000 servers_contacted=3 partitions_pruned=0 segments_time_pruned=0 groups_trimmed=17000 rows_heap_kept=0 cache_hit=1 coalesced=0 cache_bytes=801 shed=0 view_hit=0 view_staleness_ms=0 batches_streamed=0 peak_engine_bytes=390
//
// Every plan line carries an exec= token: row scans stream across the
// connector boundary as column-major batches (Connector v3), so a
// selection shows exec=streaming with the batch size, and the stats line
// reports how many batches crossed and the peak engine-resident bytes —
// one in-flight batch, not the whole materialized result:
//
//	sql> EXPLAIN SELECT order_id, city, amount FROM pinot.orders WHERE city = 'sf' AND amount > 40 LIMIT 5
//	plan:
//	  scan pinot.orders [row-scan] pushdown=filters+limit exec=streaming batch=4096 route=partition servers_contacted=1 partitions_pruned=2 rows_moved=5 time=451µs
//	stats: rows_moved=5 fallbacks=0 segments_scanned=2 rows_scanned=2500 servers_contacted=1 partitions_pruned=2 segments_time_pruned=0 groups_trimmed=0 rows_heap_kept=0 cache_hit=0 coalesced=0 cache_bytes=0 shed=0 view_hit=0 view_staleness_ms=0 batches_streamed=1 peak_engine_bytes=285
//
// The demo also registers the city-revenue dashboard shape as a
// materialized view, maintained incrementally from the table's mutation
// feed. Unlike a cache entry — which any ingest invalidates — the view
// keeps serving at hit latency under writes; its plan line shows view=hit
// with no scan at all, even right after new rows land:
//
//	sql> EXPLAIN SELECT city, SUM(amount) AS revenue FROM pinot.orders GROUP BY city
//	plan:
//	  scan pinot.orders [aggregate-scan] pushdown=aggs exec=materialized view=hit rows_moved=4 time=12µs
//	stats: rows_moved=4 fallbacks=0 segments_scanned=0 rows_scanned=0 servers_contacted=0 partitions_pruned=0 segments_time_pruned=0 groups_trimmed=0 rows_heap_kept=0 cache_hit=0 coalesced=0 cache_bytes=801 shed=0 view_hit=1 view_staleness_ms=0 batches_streamed=0 peak_engine_bytes=138
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fedsql"
	"repro/internal/metadata"
	"repro/internal/objstore"
	"repro/internal/obs"
	"repro/internal/olap"
	"repro/internal/olap/matview"
	"repro/internal/record"
	"repro/internal/sqlparse"
)

func main() {
	timeout := flag.Duration("timeout", 0, "per-query deadline (e.g. 500ms, 2s); 0 disables")
	flag.Parse()
	engine, deployment, err := buildDemo()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlshell:", err)
		os.Exit(1)
	}
	fmt.Println("catalogs:", strings.Join(engine.Catalogs(), ", "),
		"— tables: pinot.orders (fresh), hive.orders (archive). EXPLAIN <select> shows decisions. \\scale joins servers, \\cluster shows placement, \\q quits.")
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("sql> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == `\q`, line == "exit", line == "quit":
			return
		case line == `\cluster`:
			printCluster(deployment)
		case line == `\scale`:
			scaleDemo(engine, deployment, *timeout)
		case len(line) > 8 && strings.EqualFold(line[:8], "EXPLAIN "):
			rest := strings.TrimSpace(line[8:])
			analyze := len(rest) > 8 && strings.EqualFold(rest[:8], "ANALYZE ")
			if analyze {
				rest = strings.TrimSpace(rest[8:])
			}
			res, err := runQuery(engine, rest, *timeout)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				printExplain(res)
				if analyze {
					printTrace(res)
				}
			}
		default:
			res, err := runQuery(engine, line, *timeout)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				printResult(res)
			}
		}
		fmt.Print("sql> ")
	}
}

// runQuery executes one statement under the configured deadline, threading
// the context through Engine.QueryCtx so OLAP segment scans and federated
// join sides stop when time runs out.
func runQuery(engine *fedsql.Engine, sql string, timeout time.Duration) (*fedsql.Result, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return engine.QueryCtx(ctx, sql)
}

func printResult(res *fedsql.Result) {
	for _, c := range res.Columns {
		fmt.Printf("%-18s", c)
	}
	fmt.Println()
	for _, row := range res.Rows {
		for _, v := range row {
			fmt.Printf("%-18v", v)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

// printExplain renders the per-scan pushdown/routing decisions and the
// unified stats the query actually produced.
func printExplain(res *fedsql.Result) {
	fmt.Println("plan:")
	for _, line := range res.Plan {
		fmt.Println("  " + line)
	}
	st := res.Stats
	fmt.Printf("stats: rows_moved=%d fallbacks=%d segments_scanned=%d rows_scanned=%d servers_contacted=%d partitions_pruned=%d segments_time_pruned=%d groups_trimmed=%d rows_heap_kept=%d cache_hit=%d coalesced=%d cache_bytes=%d shed=%d view_hit=%d view_staleness_ms=%d batches_streamed=%d peak_engine_bytes=%d\n",
		st.RowsReturned, st.PushdownFallbacks, st.Exec.SegmentsScanned, st.Exec.RowsScanned,
		st.Exec.ServersContacted, st.Exec.PartitionsPruned, st.Exec.SegmentsPruned,
		st.Exec.GroupsTrimmed, st.Exec.RowsHeapKept,
		st.Exec.CacheHit, st.Exec.Coalesced, st.Exec.CacheMemBytes, st.Exec.Shed,
		st.Exec.ViewHit, st.Exec.ViewStalenessMs, st.BatchesStreamed, st.PeakEngineBytes)
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

// printTrace renders the span tree a traced query recorded: every stage from
// the federated scan through the broker scatter down to each segment scan,
// with wall durations and row counts.
func printTrace(res *fedsql.Result) {
	if res.Trace == nil {
		fmt.Println("trace: (tracer not configured)")
		return
	}
	fmt.Println("trace:")
	for _, line := range strings.Split(strings.TrimRight(res.Trace.Render(), "\n"), "\n") {
		fmt.Println("  " + line)
	}
}

// printCluster renders the membership and replica-slot placement: which
// servers are active, how many segment replicas each holds, and how many
// segments are offloaded to the deep store.
func printCluster(d *olap.Deployment) {
	counts := make(map[int]int)
	offloaded := 0
	infos := d.SegmentInfos()
	for _, info := range infos {
		for _, ri := range info.Replicas {
			counts[ri]++
		}
		if info.Resident == 0 {
			offloaded++
		}
	}
	fmt.Printf("cluster: %d servers, %d sealed segments (%d offloaded)\n", d.NumServers(), len(infos), offloaded)
	for i := 0; i < d.NumServers(); i++ {
		state := "active"
		if d.Decommissioned(i) {
			state = "decommissioned"
		}
		fmt.Printf("  server %d: %-14s %d replica slots\n", i, state, counts[i])
	}
}

// scaleDemo is the elasticity walkthrough: join two servers and rebalance
// while a dashboard workload keeps querying — sticky planning moves only the
// balanced share of segment replicas, and no query ever errors or sees a
// segment twice.
func scaleDemo(engine *fedsql.Engine, d *olap.Deployment, timeout time.Duration) {
	before := d.NumServers()
	fmt.Printf("scaling pinot.orders %d -> %d servers with a live dashboard workload...\n", before, before+2)

	stop := make(chan struct{})
	var queries, errs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := runQuery(engine, "SELECT city, SUM(amount) AS revenue, COUNT(*) FROM pinot.orders GROUP BY city", timeout); err != nil {
					errs.Add(1)
				} else {
					queries.Add(1)
				}
			}
		}()
	}

	// Let the dashboard ramp so queries genuinely overlap the moves.
	for queries.Load() == 0 && errs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	var applied, metaMoves int
	var bytesCopied int64
	var slots int
	for i := 0; i < 2; i++ {
		idx := d.AddServer(olap.NewServer(fmt.Sprintf("s%d", before+i)))
		rep, err := d.Rebalance(context.Background())
		if err != nil {
			fmt.Println("rebalance error:", err)
			break
		}
		applied += rep.Applied
		metaMoves += rep.MetadataMoves
		bytesCopied += rep.BytesCopied
		slots = rep.Slots
		fmt.Printf("  joined server %d: moved %d of %d replica slots (%.0f%%), %s copied, %d metadata-only\n",
			idx, rep.Applied, rep.Slots, 100*float64(rep.Applied)/float64(rep.Slots),
			fmtBytes(rep.BytesCopied), rep.MetadataMoves)
	}
	elapsed := time.Since(start)
	// Keep the workload flying a beat past the last move before stopping.
	tail := queries.Load() + 4
	for queries.Load() < tail && errs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	fmt.Printf("scale-out done in %v: %d slots moved of %d total, %s copied (%d metadata-only)\n",
		elapsed.Round(time.Microsecond), applied, slots, fmtBytes(bytesCopied), metaMoves)
	fmt.Printf("dashboard workload during rebalance: %d queries, %d errors\n", queries.Load(), errs.Load())
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func demoSchema() *metadata.Schema {
	return &metadata.Schema{
		Name:    "orders",
		Version: 1,
		Fields: []metadata.Field{
			{Name: "order_id", Type: metadata.TypeString},
			{Name: "city", Type: metadata.TypeString, Dimension: true},
			{Name: "status", Type: metadata.TypeString, Dimension: true},
			{Name: "amount", Type: metadata.TypeDouble},
			{Name: "ts", Type: metadata.TypeTimestamp},
		},
		TimeField: "ts",
	}
}

func demoRows(n int) []record.Record {
	cities := []string{"sf", "nyc", "la", "chi"}
	statuses := []string{"placed", "cooking", "delivered"}
	rows := make([]record.Record, n)
	for i := range rows {
		rows[i] = record.Record{
			"order_id": fmt.Sprintf("o%06d", i),
			"city":     cities[i%4],
			"status":   statuses[i%3],
			"amount":   float64(i%80) + 0.99,
			"ts":       int64(1700000000000 + i*1000),
		}
	}
	return rows
}

// buildDemo wires the demo deployment: the Pinot table declares its
// partition function (city-hash over 4 partitions) and the connector routes
// with partition awareness, so EXPLAIN on a city-filtered query shows
// servers being skipped entirely.
func buildDemo() (*fedsql.Engine, *olap.Deployment, error) {
	const partitions = 4
	schema := demoSchema()
	rows := demoRows(20_000)
	servers := make([]*olap.Server, partitions)
	for i := range servers {
		servers[i] = olap.NewServer(fmt.Sprintf("s%d", i))
	}
	d, err := olap.NewDeployment(olap.DeploymentConfig{
		Table: olap.TableConfig{
			Name: "orders", Schema: schema, SegmentRows: 2500,
			Indexes:         olap.IndexConfig{InvertedColumns: []string{"city", "status"}},
			Replicas:        2,
			PartitionColumn: "city",
			Partitions:      partitions,
		},
		Servers:      servers,
		SegmentStore: objstore.NewMemStore(),
		Backup:       olap.BackupP2P,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, r := range rows {
		if err := d.Ingest(olap.PartitionFor(r["city"], partitions), r); err != nil {
			return nil, nil, err
		}
	}
	pinot := fedsql.NewPinotConnector("pinot")
	pinot.Router = &olap.PartitionRouter{}
	// Dashboard traffic repeats the same handful of queries: give the demo
	// broker a result cache so a repeated EXPLAIN shows cache=hit, and a
	// materialized-view registry so the standing dashboard shape below
	// shows view=hit even while rows are being ingested.
	pinot.CacheMaxBytes = 8 << 20
	pinot.EnableViews = &matview.Config{MaxStaleness: 5 * time.Second}
	pinot.AddTable(d)
	// The city-revenue dashboard shape, maintained incrementally: EXPLAIN
	// "SELECT city, SUM(amount) AS revenue FROM pinot.orders GROUP BY city"
	// shows view=hit with zero segments scanned.
	if err := pinot.RegisterView(context.Background(), "orders", fedsql.AggregateQuery{
		GroupBy: []string{"city"},
		Aggs:    []sqlparse.SelectItem{{Func: sqlparse.FuncSum, Column: "amount", Alias: "revenue"}},
	}); err != nil {
		return nil, nil, err
	}

	store := objstore.NewMemStore()
	codec, err := record.NewCodec(schema)
	if err != nil {
		return nil, nil, err
	}
	w := objstore.NewRawLogWriter(store, "orders", codec)
	if err := w.Append(rows); err != nil {
		return nil, nil, err
	}
	if _, err := objstore.NewCompactor(store, "orders", codec).Compact(); err != nil {
		return nil, nil, err
	}
	hive := fedsql.NewArchiveConnector("hive", store)
	hive.AddTable("orders", schema)

	engine := fedsql.NewEngine()
	engine.Register(pinot)
	engine.Register(hive)
	// EXPLAIN ANALYZE renders the span tree this tracer records; queries
	// slower than the threshold also land in its slow-query ring.
	engine.Tracer = obs.NewTracer(obs.TracerConfig{
		Recent:        16,
		Slow:          8,
		SlowThreshold: 250 * time.Millisecond,
	})
	return engine, d, nil
}
