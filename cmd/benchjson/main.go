// Command benchjson runs the tier-1 performance benchmarks and writes them
// as machine-readable JSON — the artifact CI publishes (BENCH_pr7.json) and
// gates pull requests on.
//
// The metric set is the query-serving hot path: cache-hit and cache-miss
// p50 service time (ns/op), the hit-path speedup and hit rate, in-flight
// coalescing (executions for 128 concurrent identical queries), burst
// shedding, the bounded top-K shipping counts from E19, the
// materialized-view serving ratios from E21, and the observability overhead
// ratio (traced vs untraced cache-hit p50). With -baseline, the run is
// compared against a checked-in reference and the process exits non-zero
// when a hit-path metric regresses beyond -maxregress (default 2x).
//
// Gating policy: absolute wall-clock numbers are machine-dependent (the
// checked-in baseline was recorded on different hardware than a CI
// runner), so they are recorded as "info" only. The gated hit-path metric
// is cache_hit_speedup — miss p50 / hit p50 measured in the same run on a
// Workers=1 broker, so the ratio cancels both CPU speed and core count —
// alongside the deterministic counters (executions, rows/groups shipped,
// hit rate, shed fraction) and the obs_overhead ratio (also same-run, also
// hardware-independent), all held to the same multiplicative budget.
//
// Usage:
//
//	benchjson -out BENCH_pr7.json                      # measure + write
//	benchjson -out BENCH_pr7.json -baseline BENCH_baseline.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/olap"
)

// Metric is one benchmark measurement with its regression direction.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// Direction is "lower" (smaller is better: latencies, rows shipped,
	// executions), "higher" (speedups, hit rates), or "info" (not gated).
	Direction string `json:"direction"`
}

// Report is the BENCH_pr7.json schema.
type Report struct {
	Schema    string            `json:"schema"`
	Go        string            `json:"go"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	CPUs      int               `json:"cpus"`
	CreatedAt string            `json:"created_at"`
	Metrics   map[string]Metric `json:"metrics"`
}

func main() {
	out := flag.String("out", "BENCH_pr10.json", "output JSON path")
	baseline := flag.String("baseline", "", "baseline JSON to gate against (optional)")
	maxRegress := flag.Float64("maxregress", 2.0, "max allowed regression factor for gated metrics")
	flag.Parse()

	rep := measure()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %s (%d metrics)\n", *out, len(rep.Metrics))

	if *baseline == "" {
		return
	}
	baseData, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(fmt.Errorf("reading baseline: %w", err))
	}
	var base Report
	if err := json.Unmarshal(baseData, &base); err != nil {
		fatal(fmt.Errorf("parsing baseline: %w", err))
	}
	if failed := gate(rep, base, *maxRegress); failed > 0 {
		fatal(fmt.Errorf("%d metric(s) regressed beyond %.1fx vs %s", failed, *maxRegress, *baseline))
	}
	fmt.Printf("benchjson: regression gate passed vs %s (budget %.1fx)\n", *baseline, *maxRegress)
}

// measure runs the tier-1 benchmarks (the E20 cache/admission suite at
// benchmark scale, E19's bounded top-K shipping counts, and E21's
// materialized-view serving ratios) and assembles the report.
func measure() Report {
	rep := Report{
		Schema:    "repro-bench/v1",
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Metrics:   map[string]Metric{},
	}
	hit, miss := measureHitPath()
	rep.Metrics["cache_hit_p50_ns"] = Metric{float64(hit.Nanoseconds()), "ns/op", "info"}
	rep.Metrics["cache_miss_p50_ns"] = Metric{float64(miss.Nanoseconds()), "ns/op", "info"}
	rep.Metrics["cache_hit_speedup"] = Metric{float64(miss) / float64(hit), "x", "higher"}

	e20 := rows(experiments.E20(24_000))
	rep.Metrics["cache_hit_rate"] = Metric{e20["hit_rate"], "frac", "higher"}
	rep.Metrics["coalesce_executions"] = Metric{e20["executions"], "queries", "lower"}
	rep.Metrics["burst_shed_frac"] = Metric{e20["burst_shed"] / e20["burst_queries"], "frac", "higher"}
	rep.Metrics["cache_mem_bytes"] = Metric{e20["cache_mem_bytes"], "B", "info"}

	e19 := rows(experiments.E19(40_000))
	rep.Metrics["topk_groups_shipped"] = Metric{e19["trim_groups_shipped"], "groups", "lower"}
	rep.Metrics["topk_rows_shipped"] = Metric{e19["trim_rows_shipped"], "rows", "lower"}

	// E21: view serving under continuous ingest. The gated ratios are
	// measured in the same run (view p50 / cache-hit p50, both on this
	// machine), so they transfer across hardware like cache_hit_speedup.
	e21 := rows(experiments.E21(24_000))
	rep.Metrics["view_p50_ns"] = Metric{e21["view_p50_us"] * 1e3, "ns/op", "info"}
	rep.Metrics["view_vs_cachehit"] = Metric{e21["view_vs_cachehit"], "x", "lower"}
	rep.Metrics["view_hit_rate_under_ingest"] = Metric{e21["view_hit_rate_under_ingest"], "frac", "higher"}
	rep.Metrics["view_answer_matches_cold"] = Metric{e21["view_answer_matches_cold"], "bool", "higher"}

	// Observability overhead: same-run traced/untraced hit-p50 ratio, so it
	// transfers across hardware and can be gated like cache_hit_speedup.
	obsRatio, tracedHit, points := measureObsOverhead()
	rep.Metrics["obs_overhead"] = Metric{obsRatio, "x", "lower"}
	rep.Metrics["obs_traced_hit_p50_ns"] = Metric{float64(tracedHit.Nanoseconds()), "ns/op", "info"}
	rep.Metrics["obs_metric_points"] = Metric{points, "points", "info"}

	// E23: cluster elasticity. The moved ratio (sticky/naive on the same
	// snapshot) is machine-independent and gated "lower"; the correctness
	// claims are booleans gated "higher" — a zero-count metric gated
	// "lower" would never fail (the gate skips zero baselines), so the
	// error count itself is informational and rebalance_exact carries the
	// zero-errors/zero-wrong-answers gate.
	e23 := rows(experiments.E23(24_000))
	rep.Metrics["segments_moved_ratio"] = Metric{e23["segments_moved_ratio"], "x", "lower"}
	rep.Metrics["rebalance_query_errors"] = Metric{e23["rebalance_query_errors"], "queries", "info"}
	rep.Metrics["rebalance_exact"] = Metric{e23["rebalance_exact"], "bool", "higher"}
	rep.Metrics["offload_zero_copy"] = Metric{e23["offload_zero_copy"], "bool", "higher"}
	rep.Metrics["rebalance_bytes_copied"] = Metric{e23["scaleout_bytes_copied"], "B", "info"}

	// E24: streaming execution. Both gated ratios are same-run comparisons
	// (materialized vs streaming on this machine), so they transfer across
	// hardware like cache_hit_speedup; streaming_exact carries the
	// byte-identical gate and the absolute byte/throughput numbers are
	// informational.
	e24 := rows(experiments.E24(24_000))
	rep.Metrics["streaming_mem_reduction"] = Metric{e24["streaming_mem_reduction"], "x", "higher"}
	rep.Metrics["streaming_throughput_ratio"] = Metric{e24["streaming_throughput_ratio"], "x", "higher"}
	rep.Metrics["streaming_exact"] = Metric{e24["streaming_exact"], "bool", "higher"}
	rep.Metrics["stream_scan_gbps_core"] = Metric{e24["stream_scan_gbps_core"], "GB/s/core", "info"}
	rep.Metrics["stream_peak_engine_bytes"] = Metric{e24["stream_peak_engine_bytes"], "B", "info"}
	rep.Metrics["stream_batches"] = Metric{e24["stream_batches"], "batches", "info"}
	return rep
}

// measureObsOverhead times the cache-hit p50 on two identical Workers=1
// brokers over the same deployment — one with a tracer attached, one plain —
// in interleaved rounds, and returns the smallest traced/untraced ratio seen.
// Interleaving puts both sides under the same scheduler and thermal
// conditions; taking the minimum across rounds discards rounds where either
// side was preempted, leaving the intrinsic tracing cost (the quantity the
// 5% overhead budget bounds). Also returns the traced hit p50 from the best
// round and the number of metric points the deployment registry exports.
func measureObsOverhead() (ratio float64, tracedHit time.Duration, points float64) {
	d := experiments.ScatterGatherDeployment(30_000, 3_000)
	req := &olap.QueryRequest{Query: &olap.Query{
		Filters: []olap.Filter{{Column: "status", Op: olap.OpEq, Value: "delivered"}},
		GroupBy: []string{"city"},
		Aggs:    []olap.AggSpec{{Kind: olap.AggSum, Column: "amount"}, {Kind: olap.AggCount}},
	}}
	plain := olap.NewBrokerWithOptions(d, olap.BrokerOptions{Workers: 1, CacheMaxBytes: 8 << 20})
	tracer := obs.NewTracer(obs.TracerConfig{Recent: 8})
	traced := olap.NewBrokerWithOptions(d, olap.BrokerOptions{
		Workers: 1, CacheMaxBytes: 8 << 20, Tracer: tracer,
	})
	const rounds, iters = 5, 200
	p50 := func(b *olap.Broker) time.Duration {
		samples := make([]time.Duration, iters)
		for i := range samples {
			start := time.Now()
			if _, err := b.Execute(context.Background(), req); err != nil {
				fatal(err)
			}
			samples[i] = time.Since(start)
		}
		sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
		return samples[iters/2]
	}
	p50(plain) // warm both caches; the timed rounds below are all hits
	p50(traced)
	best := 0.0
	for r := 0; r < rounds; r++ {
		tp, pp := p50(traced), p50(plain)
		if rr := float64(tp) / float64(pp); best == 0 || rr < best {
			best, tracedHit = rr, tp
		}
	}
	return best, tracedHit, float64(len(d.MetricsSnapshot()))
}

// measureHitPath times the cache hit and miss p50 on the same Workers=1
// deployment: serial execution makes the miss cost core-count-independent,
// so the speedup ratio transfers across machines and can be gated tightly.
func measureHitPath() (hit, miss time.Duration) {
	d := experiments.ScatterGatherDeployment(30_000, 3_000)
	req := &olap.QueryRequest{Query: &olap.Query{
		Filters: []olap.Filter{{Column: "status", Op: olap.OpEq, Value: "delivered"}},
		GroupBy: []string{"city"},
		Aggs:    []olap.AggSpec{{Kind: olap.AggSum, Column: "amount"}, {Kind: olap.AggCount}},
	}}
	serial := olap.NewBrokerWithOptions(d, olap.BrokerOptions{Workers: 1})
	cached := olap.NewBrokerWithOptions(d, olap.BrokerOptions{Workers: 1, CacheMaxBytes: 8 << 20})
	const iters = 50
	p50 := func(b *olap.Broker) time.Duration {
		samples := make([]time.Duration, iters)
		for i := range samples {
			start := time.Now()
			if _, err := b.Execute(context.Background(), req); err != nil {
				fatal(err)
			}
			samples[i] = time.Since(start)
		}
		sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
		return samples[iters/2]
	}
	miss = p50(serial)
	if _, err := cached.Execute(context.Background(), req); err != nil {
		fatal(err) // warm once; the timed loop below is all hits
	}
	hit = p50(cached)
	return hit, miss
}

func rows(rs []experiments.Row) map[string]float64 {
	out := make(map[string]float64, len(rs))
	for _, r := range rs {
		out[r.Name] = r.Value
	}
	return out
}

// gate compares gated metrics against the baseline: "lower" metrics may not
// exceed baseline*maxRegress, "higher" metrics may not fall below
// baseline/maxRegress. A metric new in this run is reported but not failed
// (the baseline regenerates on the next refresh); a *gated baseline metric
// missing from this run fails* — a renamed or dropped measurement must not
// silently pass the gate.
func gate(rep, base Report, maxRegress float64) (failed int) {
	for name, bm := range base.Metrics {
		if _, ok := rep.Metrics[name]; ok || bm.Direction == "info" {
			continue
		}
		fmt.Printf("  MISSING %-21s baseline %14.2f %s not measured in this run\n", name, bm.Value, bm.Unit)
		failed++
	}
	for name, m := range rep.Metrics {
		bm, ok := base.Metrics[name]
		if !ok {
			fmt.Printf("  new    %-22s %14.2f %s (no baseline)\n", name, m.Value, m.Unit)
			continue
		}
		status := "ok"
		switch m.Direction {
		case "lower":
			if bm.Value > 0 && m.Value > bm.Value*maxRegress {
				status = "REGRESSED"
				failed++
			}
		case "higher":
			if m.Value < bm.Value/maxRegress {
				status = "REGRESSED"
				failed++
			}
		default:
			status = "info"
		}
		fmt.Printf("  %-6s %-22s %14.2f vs baseline %14.2f %s\n", status, name, m.Value, bm.Value, m.Unit)
	}
	return failed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
