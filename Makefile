# Local developer loop. CI runs the same commands (see .github/workflows/ci.yml).

REPOLINT := $(CURDIR)/bin/repolint

.PHONY: build test lint repolint fuzz-smoke fmt

build:
	go build ./...

test:
	go test ./...

# repolint builds the invariant checker; lint runs it over every package —
# including test files — via the go vet -vettool protocol.
repolint:
	@mkdir -p bin
	go build -o $(REPOLINT) ./cmd/repolint

lint: repolint
	go vet -vettool=$(REPOLINT) ./...

fuzz-smoke:
	go test ./internal/olap -run='^$$' -fuzz=FuzzMergePartials -fuzztime=30s

fmt:
	gofmt -w .
