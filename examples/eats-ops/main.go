// UberEats ops automation (§5.4): ad-hoc federated SQL exploration over
// fresh courier/restaurant data, then productionizing the discovered insight
// as a rule in an automation framework that aggregates the last few minutes
// per geofence and notifies couriers/restaurants — the Covid-era capacity
// compliance workflow.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/metadata"
	"repro/internal/objstore"
	"repro/internal/olap"
	"repro/internal/record"
	"repro/internal/stream"
)

// rule is one productionized ops rule: a SQL query plus a threshold.
type rule struct {
	name      string
	sql       string
	threshold float64
	action    string
}

func main() {
	cluster, err := stream.NewCluster(stream.ClusterConfig{Name: "eats", Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	platform, err := core.NewPlatform(core.Config{Clusters: []*stream.Cluster{cluster}, Storage: objstore.NewMemStore()})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	checkins := &metadata.Schema{
		Name: "venue_checkins",
		Fields: []metadata.Field{
			{Name: "restaurant", Type: metadata.TypeString, Dimension: true},
			{Name: "geofence", Type: metadata.TypeString, Dimension: true},
			{Name: "role", Type: metadata.TypeString, Dimension: true}, // courier | customer
			{Name: "ts", Type: metadata.TypeTimestamp},
		},
		TimeField: "ts",
	}
	if _, err := platform.CreateStream("eats-ops", checkins, stream.TopicConfig{Partitions: 4}); err != nil {
		log.Fatal(err)
	}
	if _, err := platform.CreateOLAPTable("eats-ops", olap.TableConfig{
		Name:        "venue_checkins",
		SegmentRows: 500,
		Indexes:     olap.IndexConfig{InvertedColumns: []string{"geofence", "role"}},
	}, "venue_checkins", olap.BackupP2P); err != nil {
		log.Fatal(err)
	}

	// Live data: one Berlin geofence is over capacity.
	now := time.Now().UnixMilli()
	var rows []record.Record
	for i := 0; i < 3000; i++ {
		geo := []string{"berlin-mitte", "berlin-kreuzberg", "paris-11e", "madrid-centro"}[i%4]
		weight := 1
		if geo == "berlin-mitte" {
			weight = 3 // crowding
		}
		for w := 0; w < weight; w++ {
			rows = append(rows, record.Record{
				"restaurant": fmt.Sprintf("r-%03d", i%50),
				"geofence":   geo,
				"role":       []string{"courier", "customer"}[(i+w)%2],
				"ts":         now - int64(i%300)*1000,
			})
		}
	}
	if err := platform.ProduceRecords("eats-ops", "venue_checkins", rows); err != nil {
		log.Fatal(err)
	}
	if got := platform.WaitForOLAP("venue_checkins", int64(len(rows)), 5*time.Second); got < int64(len(rows)) {
		log.Fatalf("ingested %d of %d", got, len(rows))
	}

	// Phase 1 — ad-hoc exploration with interactive SQL (Presto on Pinot).
	fmt.Println("== ad-hoc exploration ==")
	res, err := platform.Query("eats-ops", `
		SELECT geofence, COUNT(*) AS people
		FROM pinot.venue_checkins
		GROUP BY geofence ORDER BY people DESC`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %-18v %6v\n", row[0], row[1])
	}

	// Phase 2 — productionize the insight as an automation rule: the same
	// query, parameterized and attached to a threshold + notification.
	fmt.Println("\n== automation framework ==")
	rules := []rule{
		{
			name:      "geofence-capacity",
			sql:       "SELECT geofence, COUNT(*) AS people FROM pinot.venue_checkins WHERE role = 'customer' GROUP BY geofence ORDER BY people DESC",
			threshold: 1200,
			action:    "notify couriers+restaurants: stagger pickups",
		},
		{
			name:      "courier-congestion",
			sql:       "SELECT geofence, COUNT(*) AS people FROM pinot.venue_checkins WHERE role = 'courier' GROUP BY geofence ORDER BY people DESC",
			threshold: 1200,
			action:    "notify dispatch: reroute couriers",
		},
	}
	for _, r := range rules {
		res, err := platform.Query("eats-ops", r.sql)
		if err != nil {
			log.Fatal(err)
		}
		fired := 0
		for _, row := range res.Rows {
			people, _ := row[1].(int64)
			if float64(people) > r.threshold {
				fmt.Printf("  ALERT [%s] %v: %d people > %.0f -> %s\n", r.name, row[0], people, r.threshold, r.action)
				fired++
			}
		}
		if fired == 0 {
			fmt.Printf("  ok    [%s] all geofences under threshold\n", r.name)
		}
	}
}
