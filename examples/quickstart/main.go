// Quickstart: the full abstraction stack end to end — register a schema,
// produce events to the logical stream, run a streaming SQL aggregation,
// ingest into an OLAP table, and query everything with federated SQL.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/metadata"
	"repro/internal/objstore"
	"repro/internal/olap"
	"repro/internal/record"
	"repro/internal/stream"
)

func main() {
	cluster, err := stream.NewCluster(stream.ClusterConfig{Name: "main", Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	platform, err := core.NewPlatform(core.Config{
		Clusters: []*stream.Cluster{cluster},
		Storage:  objstore.NewMemStore(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// 1. Register the trips stream (schema + topic in one step).
	schema := &metadata.Schema{
		Name: "trips",
		Fields: []metadata.Field{
			{Name: "trip_id", Type: metadata.TypeString},
			{Name: "city", Type: metadata.TypeString, Dimension: true},
			{Name: "fare", Type: metadata.TypeDouble},
			{Name: "ts", Type: metadata.TypeTimestamp},
		},
		TimeField:  "ts",
		PrimaryKey: "trip_id",
	}
	if _, err := platform.CreateStream("quickstart", schema, stream.TopicConfig{Partitions: 4}); err != nil {
		log.Fatal(err)
	}

	// 2. OLAP table fed from the stream (schema inferred).
	if _, err := platform.CreateOLAPTable("quickstart",
		olap.TableConfig{Name: "trips", SegmentRows: 500}, "trips", olap.BackupP2P); err != nil {
		log.Fatal(err)
	}

	// 3. Streaming SQL: per-city revenue in 1-minute windows.
	windows := flow.NewCollectSink()
	if err := platform.DeployStreamingSQL("quickstart", "revenue",
		"SELECT city, COUNT(*) AS trips, SUM(fare) AS revenue FROM trips GROUP BY city, TUMBLE(ts, 60000)",
		windows); err != nil {
		log.Fatal(err)
	}

	// 4. Produce a few thousand trips.
	base := time.Now().Add(-10 * time.Minute).UnixMilli()
	rows := make([]record.Record, 3000)
	for i := range rows {
		rows[i] = record.Record{
			"trip_id": fmt.Sprintf("trip-%05d", i),
			"city":    []string{"sf", "nyc", "la"}[i%3],
			"fare":    10 + float64(i%25),
			"ts":      base + int64(i)*200,
		}
	}
	if err := platform.ProduceRecords("quickstart", "trips", rows); err != nil {
		log.Fatal(err)
	}
	if got := platform.WaitForOLAP("trips", 3000, 5*time.Second); got != 3000 {
		log.Fatalf("OLAP ingested %d of 3000", got)
	}

	// 5. Interactive federated SQL over the fresh data.
	res, err := platform.Query("quickstart",
		"SELECT city, COUNT(*) AS trips, AVG(fare) AS avg_fare FROM pinot.trips GROUP BY city ORDER BY trips DESC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("city        trips    avg_fare")
	for _, row := range res.Rows {
		fmt.Printf("%-10v %6v %10.2f\n", row[0], row[1], row[2])
	}
	// Query API v2 stats: the aggregation executed inside the OLAP layer,
	// so only per-city aggregate rows crossed the connector boundary.
	fmt.Printf("(pushed_aggs=%v rows_moved=%d route=%s servers_contacted=%d)\n",
		res.Stats.PushedAggs, res.Stats.RowsReturned, res.Stats.Router, res.Stats.Exec.ServersContacted)

	// 6. Streaming windows land asynchronously; show what closed so far.
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("\nstreaming SQL windows emitted: %d\n", windows.Len())
	for i, r := range windows.Records() {
		if i >= 3 {
			fmt.Println("...")
			break
		}
		fmt.Printf("window city=%s trips=%d revenue=%.0f\n", r.String("city"), r.Long("trips"), r.Double("revenue"))
	}
}
