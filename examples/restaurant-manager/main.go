// UberEats Restaurant Manager (§5.2): a dashboard that trades query
// flexibility for latency — a Flink preprocessor filters, partially
// aggregates and rolls up raw order events before they reach Pinot, so the
// fixed dashboard queries hit a small pre-aggregated table instead of the
// raw stream.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/metadata"
	"repro/internal/objstore"
	"repro/internal/olap"
	"repro/internal/record"
	"repro/internal/stream"
)

func main() {
	cluster, err := stream.NewCluster(stream.ClusterConfig{Name: "main", Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	platform, err := core.NewPlatform(core.Config{Clusters: []*stream.Cluster{cluster}, Storage: objstore.NewMemStore()})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// Raw order events.
	orders := &metadata.Schema{
		Name: "eats_orders",
		Fields: []metadata.Field{
			{Name: "restaurant", Type: metadata.TypeString, Dimension: true},
			{Name: "item", Type: metadata.TypeString, Dimension: true},
			{Name: "amount", Type: metadata.TypeDouble},
			{Name: "rating", Type: metadata.TypeDouble},
			{Name: "ts", Type: metadata.TypeTimestamp},
		},
		TimeField: "ts",
	}
	if _, err := platform.CreateStream("restaurant-manager", orders, stream.TopicConfig{Partitions: 4}); err != nil {
		log.Fatal(err)
	}
	// Rolled-up stream the Flink preprocessor produces.
	rollup := &metadata.Schema{
		Name: "eats_orders_rollup",
		Fields: []metadata.Field{
			{Name: "restaurant", Type: metadata.TypeString, Dimension: true},
			{Name: "orders", Type: metadata.TypeLong},
			{Name: "revenue", Type: metadata.TypeDouble},
			{Name: "avg_rating", Type: metadata.TypeDouble},
			{Name: "window_start", Type: metadata.TypeTimestamp},
			{Name: "window_end", Type: metadata.TypeLong, Nullable: true},
		},
		TimeField: "window_start",
	}
	rollupCodec, err := platform.CreateStream("restaurant-manager", rollup, stream.TopicConfig{Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Pinot serves the rollup with an inverted index on restaurant: the
	// dashboard's fixed query pattern.
	if _, err := platform.CreateOLAPTable("restaurant-manager", olap.TableConfig{
		Name:        "eats_orders_rollup",
		SegmentRows: 200,
		Indexes:     olap.IndexConfig{InvertedColumns: []string{"restaurant"}},
	}, "eats_orders_rollup", olap.BackupP2P); err != nil {
		log.Fatal(err)
	}

	// Flink preprocessor: aggressive filtering (cancelled orders dropped
	// upstream), partial aggregation per restaurant per minute, pushed to
	// the rollup topic (FlinkSQL → Pinot sink integration, §4.3.3).
	sink := flow.NewTopicSink(platform.Streams, "eats_orders_rollup", rollupCodec)
	if err := platform.DeployStreamingSQL("restaurant-manager", "rm-preagg", `
		SELECT restaurant, COUNT(*) AS orders, SUM(amount) AS revenue, AVG(rating) AS avg_rating
		FROM eats_orders
		WHERE amount > 0
		GROUP BY restaurant, TUMBLE(ts, 60000)`, sink); err != nil {
		log.Fatal(err)
	}

	// Simulate a dinner rush.
	base := time.Now().Add(-30 * time.Minute).UnixMilli()
	restaurants := []string{"taqueria-luz", "pho-75", "bombay-corner", "pasta-rossa"}
	items := []string{"burrito", "pho", "curry", "carbonara", "salad"}
	var rows []record.Record
	for i := 0; i < 4000; i++ {
		rows = append(rows, record.Record{
			"restaurant": restaurants[i%len(restaurants)],
			"item":       items[i%len(items)],
			"amount":     8 + float64(i%30),
			"rating":     3.5 + float64(i%3)/2,
			"ts":         base + int64(i)*250,
		})
	}
	if err := platform.ProduceRecords("restaurant-manager", "eats_orders", rows); err != nil {
		log.Fatal(err)
	}

	// Wait for pre-aggregated rows to land in Pinot.
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		res, err := platform.Query("restaurant-manager", "SELECT COUNT(*) FROM pinot.eats_orders_rollup")
		if err == nil && len(res.Rows) > 0 {
			if n, ok := res.Rows[0][0].(int64); ok && n >= 40 {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The dashboard page load: fixed slice-and-dice queries, each hitting
	// the small rollup table.
	queries := map[string]string{
		"top restaurants by revenue": `
			SELECT restaurant, SUM(revenue) AS total
			FROM pinot.eats_orders_rollup GROUP BY restaurant ORDER BY total DESC LIMIT 3`,
		"orders per restaurant": `
			SELECT restaurant, SUM(orders) AS n
			FROM pinot.eats_orders_rollup GROUP BY restaurant ORDER BY n DESC LIMIT 3`,
		"satisfaction (avg rating)": `
			SELECT restaurant, AVG(avg_rating) AS rating
			FROM pinot.eats_orders_rollup GROUP BY restaurant ORDER BY rating DESC LIMIT 3`,
	}
	for title, sql := range queries {
		start := time.Now()
		res, err := platform.Query("restaurant-manager", sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%.1fms):\n", title, float64(time.Since(start).Microseconds())/1000)
		for _, row := range res.Rows {
			fmt.Printf("  %-16v %10.5v\n", row[0], row[1])
		}
	}
}
