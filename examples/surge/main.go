// Surge pricing (§5.1, Fig 6): trip events flow into regional Kafka,
// uReplicator aggregates them into every region, an identical windowed Flink
// pipeline computes per-hexagon demand/supply multipliers in each region
// (active-active), the primary region's update service writes results to the
// active-active DB, and a coordinator fails over when the primary dies —
// with the surviving region's independently computed state converging
// because both consumed the same global input.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/flow"
	"repro/internal/metadata"
	"repro/internal/record"
	"repro/internal/regions"
	"repro/internal/stream"
	"repro/internal/stream/replicator"
)

const hexagons = 6

func tripSchema() *metadata.Schema {
	return &metadata.Schema{
		Name: "trip_events",
		Fields: []metadata.Field{
			{Name: "hexagon", Type: metadata.TypeString, Dimension: true},
			{Name: "kind", Type: metadata.TypeString, Dimension: true}, // request | open_driver
			{Name: "ts", Type: metadata.TypeTimestamp},
		},
		TimeField: "ts",
	}
}

// surgePipeline computes demand/supply per hexagon per window and writes
// multipliers through the update service callback.
func surgePipeline(region string, agg *stream.Cluster, codec *record.Codec, update func(hexagon string, multiplier float64)) (*flow.Job, error) {
	src, err := flow.NewStreamSource(agg, "trip_events", codec, flow.StreamSourceConfig{TimeField: "ts"})
	if err != nil {
		return nil, err
	}
	return flow.NewJob(flow.JobSpec{
		Name:    "surge-" + region,
		Sources: []flow.SourceSpec{{Source: src, WatermarkEvery: 16}},
		Stages: []flow.StageSpec{
			{
				// Derive the numeric demand signal from the event kind.
				Name: "featurize",
				New: func() flow.Operator {
					return &flow.MapOp{Fn: func(e flow.Event) (flow.Event, error) {
						e.Data = e.Data.Clone()
						if e.Data.String("kind") == "request" {
							e.Data["is_request"] = 1.0
						} else {
							e.Data["is_request"] = 0.0
						}
						return e, nil
					}}
				},
			},
			{
				Name: "demand-supply", KeyBy: "hexagon", Parallelism: 2,
				New: func() flow.Operator {
					return flow.NewWindowAggOp(60_000, 0, "hexagon",
						flow.Aggregation{Kind: flow.AggCount, As: "events"},
						flow.Aggregation{Kind: flow.AggSum, Field: "is_request", As: "demand"},
					)
				},
			},
			{
				// The "complex machine-learning based algorithm": a
				// deterministic demand/supply ratio curve.
				Name: "model",
				New: func() flow.Operator {
					return &flow.MapOp{Fn: func(e flow.Event) (flow.Event, error) {
						demand := e.Data.Double("demand")
						supply := e.Data.Double("events") - demand
						mult := 1.0
						if supply > 0 {
							mult = 1.0 + 1.5*(demand/supply-1.0)
						}
						if mult < 1 {
							mult = 1
						}
						e.Data = e.Data.Clone()
						e.Data["multiplier"] = mult
						return e, nil
					}}
				},
			},
		},
		Sink: flow.SinkSpec{Sink: &flow.FuncSink{Fn: func(e flow.Event) error {
			update(e.Data.String("hexagon"), e.Data.Double("multiplier"))
			return nil
		}}},
	})
}

func main() {
	codec, err := record.NewCodec(func() *metadata.Schema { s := tripSchema(); s.Version = 1; return s }())
	if err != nil {
		log.Fatal(err)
	}
	mkRegion := func(name string) *regions.Region {
		mk := func(suffix string) *stream.Cluster {
			c, err := stream.NewCluster(stream.ClusterConfig{Name: name + "-" + suffix, Nodes: 3})
			if err != nil {
				log.Fatal(err)
			}
			// Surge favors freshness over consistency: the higher-throughput
			// non-lossless configuration (§5.1).
			if err := c.CreateTopic("trip_events", stream.TopicConfig{Partitions: 4, Acks: stream.AckLeader, ReplicationFactor: 2}); err != nil {
				log.Fatal(err)
			}
			return c
		}
		return &regions.Region{Name: name, Regional: mk("regional"), Aggregate: mk("aggregate")}
	}
	dca, phx := mkRegion("dca"), mkRegion("phx")
	mesh, err := regions.NewMultiRegion([]*regions.Region{dca, phx}, []string{"trip_events"},
		replicator.Config{Workers: 2, Interval: time.Millisecond, CheckpointEvery: 32})
	if err != nil {
		log.Fatal(err)
	}
	mesh.Start()
	defer mesh.Stop()

	// One surge pipeline per region over its aggregate cluster; only the
	// primary region's update service writes to the active-active DB.
	db := mesh.DB()
	results := map[string]map[string]float64{"dca": {}, "phx": {}}
	jobs := map[string]*flow.Job{}
	for i, r := range []*regions.Region{dca, phx} {
		region := r.Name
		idx := i
		job, err := surgePipeline(region, r.Aggregate, codec, func(hex string, mult float64) {
			results[region][hex] = mult
			if mesh.Primary() == idx {
				db.Put("surge/"+hex, fmt.Sprintf("%.2f", mult))
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := job.Start(); err != nil {
			log.Fatal(err)
		}
		jobs[region] = job
	}
	defer func() {
		for _, j := range jobs {
			j.Cancel()
			j.Wait()
		}
	}()

	// Produce trips into both regional clusters (riders in both regions).
	base := time.Now().Add(-5 * time.Minute).UnixMilli()
	for ri, r := range []*regions.Region{dca, phx} {
		p := stream.NewProducer(r.Regional, "rider-app", "", nil)
		for i := 0; i < 1200; i++ {
			hex := fmt.Sprintf("hex-%d", i%hexagons)
			kind := "open_driver"
			// Hexagon k gets demand proportional to its index.
			if i%(hexagons+1) < (i%hexagons)+1 {
				kind = "request"
			}
			payload, err := codec.Encode(record.Record{
				"hexagon": hex, "kind": kind, "ts": base + int64(i)*100 + int64(ri),
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := p.Produce("trip_events", []byte(hex), payload); err != nil {
				log.Fatal(err)
			}
		}
	}
	if lag := mesh.WaitReplicated(10 * time.Second); lag != 0 {
		log.Fatalf("replication lag %d", lag)
	}
	time.Sleep(500 * time.Millisecond) // let windows close

	fmt.Println("surge multipliers (primary region:", []string{"dca", "phx"}[mesh.Primary()], "):")
	for h := 0; h < hexagons; h++ {
		key := fmt.Sprintf("surge/hex-%d", h)
		if v, ok := db.Get(key); ok {
			fmt.Printf("  %s -> %sx\n", key, v)
		}
	}

	// Disaster: the primary region's aggregate cluster dies. The
	// coordinator fails over; the other region's independently computed
	// state has converged, so multipliers remain available.
	fmt.Println("\n-- failing primary region --")
	dca.Aggregate.SetDown(true)
	newPrimary := mesh.Failover()
	fmt.Println("new primary region:", []string{"dca", "phx"}[newPrimary])
	agree := 0
	for h := 0; h < hexagons; h++ {
		hex := fmt.Sprintf("hex-%d", h)
		if results["dca"][hex] == results["phx"][hex] {
			agree++
		}
	}
	fmt.Printf("regions computed identical multipliers for %d/%d hexagons (state convergence)\n", agree, hexagons)
}
