// Real-time prediction monitoring (§5.3): an interval join of model
// predictions against observed outcomes (labels), producing live accuracy
// measurements per model, aggregated in windows and pre-aggregated into an
// OLAP cube for fast exploration — the high-cardinality time-series workload
// that exceeds a conventional TSDB.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/flow"
	"repro/internal/metadata"
	"repro/internal/objstore"
	"repro/internal/olap"
	"repro/internal/record"
	"repro/internal/stream"
)

func main() {
	cluster, err := stream.NewCluster(stream.ClusterConfig{Name: "ml", Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	for _, topic := range []string{"predictions", "outcomes"} {
		if err := cluster.CreateTopic(topic, stream.TopicConfig{Partitions: 4}); err != nil {
			log.Fatal(err)
		}
	}
	predSchema := &metadata.Schema{
		Name:    "predictions",
		Version: 1,
		Fields: []metadata.Field{
			{Name: "model", Type: metadata.TypeString, Dimension: true},
			{Name: "entity", Type: metadata.TypeString},
			{Name: "score", Type: metadata.TypeDouble},
			{Name: "ts", Type: metadata.TypeTimestamp},
		},
		TimeField: "ts",
	}
	outSchema := &metadata.Schema{
		Name:    "outcomes",
		Version: 1,
		Fields: []metadata.Field{
			{Name: "model", Type: metadata.TypeString, Dimension: true},
			{Name: "entity", Type: metadata.TypeString},
			{Name: "label", Type: metadata.TypeDouble},
			{Name: "ts", Type: metadata.TypeTimestamp},
		},
		TimeField: "ts",
	}
	predCodec, _ := record.NewCodec(predSchema)
	outCodec, _ := record.NewCodec(outSchema)

	// Join predictions to outcomes within 30s, compute per-model absolute
	// error, window it per minute.
	predSrc, err := flow.NewStreamSource(cluster, "predictions", predCodec, flow.StreamSourceConfig{TimeField: "ts"})
	if err != nil {
		log.Fatal(err)
	}
	outSrc, err := flow.NewStreamSource(cluster, "outcomes", outCodec, flow.StreamSourceConfig{TimeField: "ts"})
	if err != nil {
		log.Fatal(err)
	}
	accuracy := flow.NewCollectSink()
	job, err := flow.NewJob(flow.JobSpec{
		Name: "prediction-monitoring",
		Sources: []flow.SourceSpec{
			{Name: "predictions", Source: predSrc, WatermarkEvery: 32},
			{Name: "outcomes", Source: outSrc, WatermarkEvery: 32},
		},
		Stages: []flow.StageSpec{
			{
				Name:        "join",
				Parallelism: 4,
				KeyBySource: map[int]string{0: "entity", 1: "entity"},
				New:         func() flow.Operator { return flow.NewIntervalJoinOp(30_000, nil) },
			},
			{
				Name: "error",
				New: func() flow.Operator {
					return &flow.MapOp{Fn: func(e flow.Event) (flow.Event, error) {
						e.Data = e.Data.Clone()
						e.Data["abs_err"] = math.Abs(e.Data.Double("score") - e.Data.Double("label"))
						return e, nil
					}}
				},
			},
			{
				Name: "window", KeyBy: "model", Parallelism: 4,
				New: func() flow.Operator {
					return flow.NewWindowAggOp(60_000, 0, "model",
						flow.Aggregation{Kind: flow.AggCount, As: "samples"},
						flow.Aggregation{Kind: flow.AggAvg, Field: "abs_err", As: "mae"},
						flow.Aggregation{Kind: flow.AggMax, Field: "abs_err", As: "worst"},
					)
				},
			},
		},
		Sink: flow.SinkSpec{Sink: accuracy},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := job.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() { job.Cancel(); job.Wait() }()

	// Thousands of models x entities: the high-cardinality fan-out.
	base := time.Now().Add(-10 * time.Minute).UnixMilli()
	predProducer := stream.NewProducer(cluster, "prediction-service", "", nil)
	outProducer := stream.NewProducer(cluster, "label-pipeline", "", nil)
	const events = 5000
	for i := 0; i < events; i++ {
		model := fmt.Sprintf("model-%02d", i%40)
		entity := fmt.Sprintf("e-%05d", i)
		score := float64(i%100) / 100
		drift := 0.0
		if i%40 == 7 { // model-07 is degrading
			drift = 0.4
		}
		pp, _ := predCodec.Encode(record.Record{"model": model, "entity": entity, "score": score, "ts": base + int64(i)*50})
		op, _ := outCodec.Encode(record.Record{"model": model, "entity": entity, "label": score + drift, "ts": base + int64(i)*50 + 500})
		if err := predProducer.Produce("predictions", []byte(entity), pp); err != nil {
			log.Fatal(err)
		}
		if err := outProducer.Produce("outcomes", []byte(entity), op); err != nil {
			log.Fatal(err)
		}
	}

	// Wait for joined, windowed accuracy metrics.
	deadline := time.Now().Add(10 * time.Second)
	for accuracy.Len() < 40 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	recs := accuracy.Records()
	fmt.Printf("accuracy windows emitted: %d\n", len(recs))

	// Pre-aggregate into an OLAP cube for exploration (as §5.3 describes).
	cubeSchema := &metadata.Schema{
		Name:    "model_accuracy",
		Version: 1,
		Fields: []metadata.Field{
			{Name: "model", Type: metadata.TypeString, Dimension: true},
			{Name: "samples", Type: metadata.TypeLong},
			{Name: "mae", Type: metadata.TypeDouble},
			{Name: "worst", Type: metadata.TypeDouble},
			{Name: "window_start", Type: metadata.TypeTimestamp},
		},
		TimeField: "window_start",
	}
	servers := []*olap.Server{olap.NewServer("s0"), olap.NewServer("s1")}
	cube, err := olap.NewDeployment(olap.DeploymentConfig{
		Table:        olap.TableConfig{Name: "model_accuracy", Schema: cubeSchema, SegmentRows: 100},
		Servers:      servers,
		SegmentStore: objstore.NewMemStore(),
		Backup:       olap.BackupP2P,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range recs {
		keep := record.Record{
			"model": r["model"], "samples": r["samples"],
			"mae": r["mae"], "worst": r["worst"], "window_start": r["window_start"],
		}
		if err := cube.Ingest(i%2, keep); err != nil {
			log.Fatal(err)
		}
	}
	// Query API v2: a typed request with a per-query deadline against the
	// replica-group-aware router (the cube has one server, so the group is
	// trivially the whole deployment — the shape matters, not the size).
	broker := olap.NewBroker(cube)
	resp, err := broker.Execute(context.Background(), &olap.QueryRequest{
		Query: &olap.Query{
			GroupBy: []string{"model"},
			Aggs:    []olap.AggSpec{{Kind: olap.AggAvg, Column: "mae", As: "mae"}},
			OrderBy: []olap.OrderSpec{{Column: "mae", Desc: true}},
			Limit:   5,
		},
		Timeout: 2 * time.Second,
		Router:  &olap.ReplicaGroupRouter{},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nworst models by mean absolute error:")
	for _, row := range resp.Rows {
		fmt.Printf("  %-10v mae=%.3f\n", row[0], row[1])
	}
	fmt.Printf("(route=%s servers_contacted=%d segments_scanned=%d)\n",
		resp.Route.Router, resp.Stats.ServersContacted, resp.Stats.SegmentsScanned)
	if len(resp.Rows) > 0 && resp.Rows[0][0] == "model-07" {
		fmt.Println("\nalert: model-07 prediction drift detected (as injected)")
	}
}
