// Package repro's root benchmarks regenerate every quantitative claim in
// the paper's narrative (DESIGN.md maps each to its section). Each benchmark
// runs the corresponding experiment from internal/experiments at a fixed
// scale and reports the headline ratios via b.ReportMetric, so
// `go test -bench=. -benchmem` prints the paper-vs-measured shape directly.
package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/olap"
)

// report republishes experiment rows as benchmark metrics.
func report(b *testing.B, rows []experiments.Row) {
	b.Helper()
	for _, r := range rows {
		b.ReportMetric(r.Value, r.Name+"_"+r.Unit)
	}
}

// BenchmarkE1_BackpressureRecovery — §4.2: Storm drains a large backlog
// superlinearly (hours); Flink's bounded buffers drain linearly (~20 min).
func BenchmarkE1_BackpressureRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E1(100_000))
	}
}

// BenchmarkE2_MicroBatchMemory — §4.2: Spark uses 5-10x the memory of the
// equivalent Flink job.
func BenchmarkE2_MicroBatchMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E2(30_000, 2_000))
	}
}

// BenchmarkE3_OLAPFootprint — §4.3: Elasticsearch needs ~4x memory and ~8x
// disk and 2-4x the query latency of Pinot for the same rows.
func BenchmarkE3_OLAPFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E3(10_000))
	}
}

// BenchmarkE4_StarTreeVsScan — §4.3: star-tree and friends give an
// order-of-magnitude query latency edge over Druid-style scans.
func BenchmarkE4_StarTreeVsScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E4(50_000))
	}
}

// BenchmarkE5_ConsumerProxyParallelism — Fig 4: push dispatch lifts the
// consumer-group cap (#partitions) for slow consumers.
func BenchmarkE5_ConsumerProxyParallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E5(200, 2, 32, time.Millisecond))
	}
}

// BenchmarkE6_Federation — §4.1.1: right-sized federated clusters beat one
// oversized cluster; the per-append membership scan is the mechanism.
func BenchmarkE6_Federation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E6(300, 3, 10_000))
	}
}

// BenchmarkE7_DLQStrategies — §4.1.2: DLQ achieves zero loss and zero
// head-of-line blocking; drop loses data; block clogs the partition.
func BenchmarkE7_DLQStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E7(400, 20))
	}
}

// BenchmarkE8_RebalanceStickiness — §4.1.4: uReplicator's rebalance moves
// far fewer partitions than naive modulo reassignment.
func BenchmarkE8_RebalanceStickiness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E8(256, 8))
	}
}

// BenchmarkE9_P2PSegmentRecovery — §4.3.4: p2p keeps sealing (freshness)
// and recovering during a segment-store outage; centralized halts.
func BenchmarkE9_P2PSegmentRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E9(1_000))
	}
}

// BenchmarkE10_Upsert — §4.3.1: shared-nothing upsert sustains high update
// rates with exactly-one-live-row-per-key reads.
func BenchmarkE10_Upsert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E10(10_000, 1_000, 4))
	}
}

// BenchmarkE11_Pushdown — §4.3.2/§4.5: operator pushdown into Pinot vs
// scan-and-process-in-engine.
func BenchmarkE11_Pushdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E11(30_000))
	}
}

// BenchmarkE12_Failover — §6 Figs 6-7: active-active convergence and
// active-passive offset-synced failover.
func BenchmarkE12_Failover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E12(200))
	}
}

// BenchmarkE13_Backfill — §7: Kappa+ reprocesses archived data far faster
// than real time, with optional throttling.
func BenchmarkE13_Backfill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E13(20_000))
	}
}

// BenchmarkE15_PreAggTradeoff — §5.2: Flink-side pre-aggregation cuts
// serving rows and latency at the cost of query flexibility.
func BenchmarkE15_PreAggTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E15(50_000))
	}
}

// BenchmarkE16_ParallelScatterGather — §4.3: the parallel scatter-gather
// pipeline vs the serial segment loop, as experiment rows (speedup ratio).
func BenchmarkE16_ParallelScatterGather(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E16(30_000))
	}
}

// BenchmarkE17_SegmentLifecycle — §4.3.4/§4.4: bounded resident memory
// under the lifecycle manager, broker time pruning ratio, and exact
// results over deep-store-offloaded segments.
func BenchmarkE17_SegmentLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E17(20_000))
	}
}

// BenchmarkE18_PushdownRouting — §4.3/§4.5 via the Query API v2: aggregate
// pushdown moves per-group aggregate rows instead of raw rows (rows_reduction),
// partition-aware routing contacts a strict subset of servers for
// partition-filtered queries, and replica-group routing bounds unfiltered
// fan-out to one replica set.
func BenchmarkE18_PushdownRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E18(20_000))
	}
}

// BenchmarkE19_TopK — §4.3: bounded top-K execution ships O(K) candidate
// groups/rows per server for ORDER BY/LIMIT queries instead of every group
// and matching row (groups_reduction / rows_reduction ≥ 10x), with trimmed
// results identical to exact full sort on unique group keys.
func BenchmarkE19_TopK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E19(40_000))
	}
}

// BenchmarkE20_CacheAdmission — north star: broker result cache + admission
// control under heavy multi-tenant traffic. Hit-path p50 collapses vs the
// miss path (hit_speedup), ≥100 concurrent identical queries execute once,
// and a 100x tenant burst sheds typed instead of collapsing the broker.
func BenchmarkE20_CacheAdmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E20(24_000))
	}
}

// BenchmarkE21_MatView — §4.3: incrementally-maintained materialized views
// keep serving standing dashboard aggregates at near-cache-hit latency
// under continuous ingest (view_vs_cachehit ≤ 2x) while the
// generation-keyed result cache collapses to a ~0% hit rate, with answers
// byte-identical to cold re-execution.
func BenchmarkE21_MatView(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E21(24_000))
	}
}

// BenchmarkE22_Observability — internal/obs: the slow-query log isolates an
// induced slow segment scan to the responsible server (slow_isolated=1,
// slow_false_positives=0) and hit-path tracing overhead stays a small ratio
// (trace_overhead_x, gated in benchjson as obs_overhead).
func BenchmarkE22_Observability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E22(12_000))
	}
}

// BenchmarkE23_Rebalance — internal/olap/rebalance: sticky segment
// rebalancing moves ~1/N of replica slots on a scale-out (naive re-hash
// moves most), queries stay exact and error-free throughout, and offloaded
// segments relocate with zero bytes copied (gated in benchjson as
// segments_moved_ratio / rebalance_exact / offload_zero_copy).
func BenchmarkE23_Rebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E23(12_000))
	}
}

// BenchmarkE24_Streaming — internal/fedsql Connector v3: a cold full-table
// aggregate scan through the pull-based batch-iterator boundary holds one
// in-flight batch instead of the whole materialized scan result
// (streaming_mem_reduction ≥10x, gated in benchjson), scans at
// stream_scan_gbps_core, and loses no throughput vs the materialized path
// (streaming_throughput_ratio ≥1) with byte-identical answers.
func BenchmarkE24_Streaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.E24(24_000))
	}
}

// BenchmarkCacheHitPath is the tier-1 hit-path microbenchmark the CI
// baseline gate watches (cmd/benchjson): one warmed cached Execute per
// iteration, so ns/op is the pure cache-hit service time.
func BenchmarkCacheHitPath(b *testing.B) {
	d := experiments.ScatterGatherDeployment(30_000, 3_000)
	broker := olap.NewBrokerWithOptions(d, olap.BrokerOptions{CacheMaxBytes: 8 << 20})
	req := &olap.QueryRequest{Query: &olap.Query{
		GroupBy: []string{"city"},
		Aggs:    []olap.AggSpec{{Kind: olap.AggSum, Column: "amount"}, {Kind: olap.AggCount}},
	}}
	if _, err := broker.Execute(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := broker.Execute(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Stats.CacheHit != 1 {
			b.Fatal("hit-path benchmark missed the cache")
		}
	}
}

// BenchmarkParallelScatterGather compares the serial segment loop
// (workers=1) against the bounded worker pool (workers=GOMAXPROCS) on the
// same multi-segment grouped aggregation — the direct measurement behind
// DESIGN.md's parallel scatter-gather claim. On a multi-core host the
// parallel variant's ns/op drops roughly with core count; on one core the
// two variants tie (the pool degrades to the serial path).
func BenchmarkParallelScatterGather(b *testing.B) {
	d := experiments.ScatterGatherDeployment(60_000, 2_000)
	q := &olap.Query{
		GroupBy: []string{"city"},
		Aggs: []olap.AggSpec{
			{Kind: olap.AggAvg, Column: "amount"},
			{Kind: olap.AggCount},
			{Kind: olap.AggDistinctCount, Column: "status"},
		},
	}
	workerCounts := []int{1, runtime.GOMAXPROCS(0)}
	if workerCounts[1] == 1 {
		workerCounts = workerCounts[:1] // single-core host: nothing to compare
	}
	for _, workers := range workerCounts {
		broker := olap.NewBrokerWithOptions(d, olap.BrokerOptions{Workers: workers})
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := broker.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA1_StarTreeLeafSweep — ablation: MaxLeafRecords trades tree size
// for query latency (DESIGN.md design-choice list).
func BenchmarkA1_StarTreeLeafSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.AblationStarTreeLeaf(30_000))
	}
}

// BenchmarkA2_ProxyWorkerSweep — ablation: proxy throughput vs worker pool
// size past the partition cap.
func BenchmarkA2_ProxyWorkerSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.AblationProxyWorkers(160, time.Millisecond))
	}
}

// BenchmarkA3_CheckpointInterval — ablation: aligned-barrier checkpoint
// cadence vs steady-state throughput.
func BenchmarkA3_CheckpointInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.AblationCheckpointInterval(20_000))
	}
}
